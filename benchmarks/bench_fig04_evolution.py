"""Figure 4: evolution of reciprocity, density, diameter, clustering coefficient.

Paper shapes: reciprocity declines after the bootstrap phase (fastest after the
public release); social density rises through phase II and its growth breaks at
the public release; the social and attribute diameters track each other; the
clustering coefficient changes phase by phase.  The Section 3.3 distance
distribution has a dominant mode with ~90% of pairs within a 3-hop band.
"""

from repro.experiments import figure4_evolution, format_series
from repro.metrics import PhaseBoundaries, distance_distribution, distance_mode


def test_fig04_metric_evolution(benchmark, snapshots, evolution, write_result):
    result = benchmark.pedantic(
        figure4_evolution,
        args=(snapshots,),
        kwargs={"clustering_samples": 3000, "diameter_precision": 6, "rng": 7},
        rounds=1,
        iterations=1,
    )

    lines = []
    for key, series in result.items():
        lines.append(format_series(series, x_label="day", y_label=key, title=f"Figure 4 — {key}"))
        lines.append("")
    write_result("fig04_evolution", "\n".join(lines))

    phases = evolution.phases
    sizes = {day: san.number_of_social_nodes() for day, san in snapshots}
    reciprocity = result["reciprocity"]
    # The first crawl days cover only a handful of users; exclude degenerate
    # snapshots from the phase comparison (the paper's day 1 already has
    # millions of users).
    mature = [(day, value) for day, value in reciprocity if sizes[day] >= 100]
    phase2 = [v for day, v in mature if phases.phase_of(day) == 2]
    phase3 = [v for day, v in mature if phases.phase_of(day) == 3]
    # Reciprocity declines after the public release and ends below phase II.
    assert phase3 == sorted(phase3, reverse=True)
    assert phase3[-1] < max(phase2)
    assert all(0.0 <= value <= 1.0 for _, value in reciprocity)

    density = result["social_density"]
    assert all(value >= 0 for _, value in density)
    # Density grows during the stabilised phase.
    phase2_density = [(day, v) for day, v in density if phases.phase_of(day) == 2]
    assert phase2_density[-1][1] > phase2_density[0][1]

    # Social and attribute diameters stay in the same small-world band.
    social_diameter = dict(result["social_diameter"])
    attribute_diameter = dict(result["attribute_diameter"])
    for day, value in social_diameter.items():
        if day in attribute_diameter and value > 0:
            assert abs(attribute_diameter[day] - value) < max(3.0, value)

    clustering = result["social_clustering"]
    assert all(0.0 <= value <= 1.0 for _, value in clustering)


def test_sec33_distance_distribution(benchmark, reference_san, write_result):
    histogram = benchmark.pedantic(
        distance_distribution, args=(reference_san,), kwargs={"num_sources": 150, "rng": 3},
        rounds=1, iterations=1,
    )
    mode = distance_mode(histogram)
    total = sum(histogram.values())
    within_band = sum(count for dist, count in histogram.items() if abs(dist - mode) <= 1)
    write_result(
        "sec33_distance_distribution",
        "\n".join(f"distance {dist}: {count}" for dist, count in sorted(histogram.items()))
        + f"\nmode={mode} mass_within_1_hop_of_mode={within_band / total:.3f}",
    )
    # Small-world: a dominant mode at a small distance with most mass near it.
    assert 2 <= mode <= 8
    assert within_band / total > 0.5
