"""Likelihood-engine benchmark: vectorized vs loop Figure 15 scoring at scale.

Generates a 50k-step Algorithm 1 history with the vectorized generation
engine, then scores the full Figure 15 spec grid on both likelihood backends.
Unlike the generation engines, the two likelihood backends share the
scored-link selection stream, so the gate here is *exact* parity — the same
seed must select the identical scored-link set, and every model's
log-likelihood must agree within 1e-8 — on top of the >= 5x speedup bar.

The vectorized side is charged for its full cost including the O(events)
encoding pass.  ``BENCH_LIKELIHOOD_STEPS`` scales the workload: the default
50k-step run must reach >= 5x; smaller smoke runs (the CI benchmark leg uses
4000 steps) assert a reduced floor because the loop backend's community scans
have not grown superlinear yet at toy scale.
"""

from __future__ import annotations

import gc
import json
import math
import os
import time
from contextlib import contextmanager


@contextmanager
def _gc_paused():
    """Pause collection inside timed sections.

    The decoded 50k-step history keeps ~800k event objects alive; cyclic-GC
    passes triggered by the evaluators' own allocations then cost hundreds
    of milliseconds at unpredictable points, which is pure timing noise —
    neither backend creates reference cycles.
    """
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()

from repro.experiments import format_table
from repro.models import (
    evaluate_attachment_models_fast,
    evaluate_attachment_models_loop,
    figure15_specs,
    generate_san_fast,
)
from repro.synthetic import BENCH_SEED, generative_params

STEPS = int(os.environ.get("BENCH_LIKELIHOOD_STEPS", "50000"))
MAX_LINKS = 2000
SUBSAMPLE_SEED = 15

#: Acceptance bar: >= 5x at the full 50k-step workload; smoke-scale runs
#: (CI) assert a reduced floor since the loop's community scans need scale.
REQUIRED_SPEEDUP = 5.0 if STEPS >= 50_000 else 2.0
#: Per-model log-likelihood parity tolerance (relative to max(1, |ll|)).
PARITY_TOLERANCE = 1e-8


def test_likelihood_engine_speedup_and_exact_parity(write_result, results_dir):
    params = generative_params(STEPS)
    run = generate_san_fast(params, rng=BENCH_SEED, record_history=True)
    history = run.history()
    del run  # only the decoded history matters; drop the generator arrays
    specs = figure15_specs()

    # The vectorized backend goes first so the loop backend's replay SAN and
    # per-link scans don't tax it with allocator pressure.
    with _gc_paused():
        fast_start = time.perf_counter()
        fast = evaluate_attachment_models_fast(
            history, specs, max_links=MAX_LINKS, rng=SUBSAMPLE_SEED
        )
        fast_seconds = time.perf_counter() - fast_start

    with _gc_paused():
        loop_start = time.perf_counter()
        loop = evaluate_attachment_models_loop(
            history, specs, max_links=MAX_LINKS, rng=SUBSAMPLE_SEED
        )
        loop_seconds = time.perf_counter() - loop_start

    speedup = loop_seconds / fast_seconds
    worst_error = max(
        abs(loop.log_likelihoods[name] - fast.log_likelihoods[name])
        / max(1.0, abs(loop.log_likelihoods[name]))
        for name in loop.log_likelihoods
    )

    # Write the result artifacts *before* asserting, so a failing run still
    # leaves its numbers in benchmarks/results/ for the CI artifact upload.
    payload = {
        "steps": STEPS,
        "social_link_events": history.num_social_links(),
        "num_specs": len(specs),
        "max_links": MAX_LINKS,
        "links_scored_loop": loop.num_links_scored,
        "links_scored_vectorized": fast.num_links_scored,
        "loop_seconds": round(loop_seconds, 3),
        "fast_seconds": round(fast_seconds, 3),
        "speedup": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "worst_relative_ll_error": worst_error,
        "parity_tolerance": PARITY_TOLERANCE,
    }
    (results_dir / "bench_likelihood.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    write_result(
        "bench_likelihood",
        format_table(
            [
                {"engine": "loop", "seconds": round(loop_seconds, 2)},
                {"engine": "vectorized", "seconds": round(fast_seconds, 2)},
            ],
            title=(
                f"Figure 15 likelihood engines — {STEPS} steps, "
                f"{history.num_social_links()} link events, {len(specs)} specs, "
                f"{loop.num_links_scored} links scored, speedup {speedup:.1f}x, "
                f"worst relative ll error {worst_error:.2e}"
            ),
        ),
    )

    # ------------------------------------------------------------------
    # Exact-parity gate: identical scored-link set, matching likelihoods.
    # ------------------------------------------------------------------
    assert loop.num_links_scored == fast.num_links_scored
    for name, value in loop.log_likelihoods.items():
        assert math.isfinite(value)
        assert abs(value - fast.log_likelihoods[name]) <= PARITY_TOLERANCE * max(
            1.0, abs(value)
        ), f"{name}: loop {value} vs vectorized {fast.log_likelihoods[name]}"

    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized likelihood engine: expected >= {REQUIRED_SPEEDUP}x at "
        f"{STEPS} steps, got {speedup:.1f}x"
    )


def test_figure15_sweep_is_reproducible(write_result):
    """Two same-seed sweeps must agree exactly (the old default drifted)."""
    from repro.models import figure15_sweep

    steps = min(STEPS, 2000)
    history = generate_san_fast(
        generative_params(steps), rng=BENCH_SEED, record_history=True
    ).history()
    first = figure15_sweep(history, max_links=500, rng=SUBSAMPLE_SEED)
    second = figure15_sweep(history, max_links=500, rng=SUBSAMPLE_SEED)
    assert first == second
    write_result(
        "bench_likelihood_determinism",
        f"figure15_sweep determinism — {steps} steps, "
        f"{first['num_links_scored']} links scored: two same-seed sweeps identical",
    )
