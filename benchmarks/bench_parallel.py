"""Parallel process-pool tier vs the frozen single-core kernels.

The parallel-tier tentpole claims the shared-memory process pool buys at
least ``REQUIRED_SPEEDUP`` on the two heaviest whole-graph kernels —
triangle counting and link-prediction candidate ranking — at four workers
on the ``large`` scenario, while staying bit-identical to the frozen
kernels it shadows.  This bench measures a cores-vs-speedup curve for both
kernels, verifies bit-identity at every point on the curve, writes the
comparison to ``benchmarks/results/bench_parallel.{json,txt}`` and appends
a trajectory entry to ``benchmarks/results/BENCH_PARALLEL.json`` *before*
asserting, so a failed gate still leaves the numbers on disk.

The speedup gate only binds on machines with at least ``GATE_WORKERS``
cores running the ``large`` scenario; CI smoke legs on small runners set
``BENCH_PARALLEL_SCENARIO`` / ``BENCH_PARALLEL_MIN_SPEEDUP`` to shrink the
workload and the floor while keeping the bit-identity checks strict.
Bit-identity is asserted even on a single-core machine by forcing a
two-worker pool through ``REPRO_MAX_WORKERS``.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro import engine
from repro.algorithms.triangles import count_directed_triangles
from repro.applications.link_prediction import rank_candidate_pairs
from repro.engine import parallel
from repro.experiments import ArtifactResolver, format_table, get_scenario

#: The acceptance bar: speedup over the frozen single-core kernels at
#: ``GATE_WORKERS`` workers on the ``large`` scenario.
REQUIRED_SPEEDUP = 2.5
GATE_WORKERS = 4
GATE_SCENARIO = "large"

#: Scenario preset this bench runs under (independent of ``BENCH_SCENARIO``
#: so the figure benches and the parallel gate can scale separately).
PARALLEL_SCENARIO = os.environ.get("BENCH_PARALLEL_SCENARIO", GATE_SCENARIO)

RESULTS_DIR = Path(__file__).parent / "results"

TOP_K = 200
ROUNDS = 2

#: The gated kernels: the two heaviest whole-graph dispatches.
KERNELS = {
    "count_directed_triangles": count_directed_triangles,
    "rank_candidate_pairs": lambda frozen: rank_candidate_pairs(
        frozen, top_k=TOP_K, metric="common_neighbors"
    ),
}


def _worker_curve() -> list:
    """Worker counts to measure: 1 (frozen fallback), 2, then powers of two
    up to the core count.  A single-core machine still measures [1, 2] —
    the two-worker point is oversubscribed but exercises the real pool."""
    cores = os.cpu_count() or 1
    counts = {1, 2}
    for workers in (4, 8):
        if cores >= workers:
            counts.add(workers)
    if 2 <= cores <= 8:
        counts.add(cores)
    return sorted(counts)


def _best_of_cold(function, san, rounds: int = ROUNDS):
    """Best-of-``rounds`` timing on a freshly frozen graph each round.

    Candidate ranking memoizes its whole-graph sparse product on the frozen
    SAN, so re-freezing guarantees every timed call does real work; only the
    undirected CSR — shared infrastructure both tiers start from — is
    pre-warmed.  Returns ``(seconds, result)``.
    """
    best = math.inf
    result = None
    for _ in range(rounds):
        fresh = san.freeze()
        fresh.social.undirected_csr()
        start = time.perf_counter()
        result = function(fresh)
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def workload():
    """The scenario's reference SAN (same artifact the pipeline measures)."""
    scenario = get_scenario(PARALLEL_SCENARIO)
    resolver = ArtifactResolver(scenario)
    return resolver.artifact("reference_san")


def test_parallel_tier_speedup(workload, write_result, monkeypatch):
    san = workload

    # Frozen single-core baseline: the escape hatch pins the frozen tier
    # even on a many-core machine.
    monkeypatch.setenv(parallel.DISABLE_ENV_VAR, "1")
    baselines = {}
    for name, function in KERNELS.items():
        baselines[name] = _best_of_cold(function, san)
    monkeypatch.delenv(parallel.DISABLE_ENV_VAR)

    rows = []
    mismatches = []
    speedup_at = {name: {} for name in KERNELS}
    try:
        engine.configure(parallel_threshold=0)
        for workers in _worker_curve():
            monkeypatch.setenv(parallel.MAX_WORKERS_ENV_VAR, str(workers))
            tier = "parallel" if parallel.parallel_available() else "frozen-fallback"
            for name, function in KERNELS.items():
                seconds, result = _best_of_cold(function, san)
                base_seconds, base_result = baselines[name]
                speedup = base_seconds / seconds
                speedup_at[name][workers] = speedup
                if result != base_result:
                    mismatches.append(f"{name} @ {workers} workers")
                rows.append(
                    {
                        "kernel": name,
                        "workers": workers,
                        "tier": tier,
                        "frozen_ms": round(base_seconds * 1e3, 3),
                        "parallel_ms": round(seconds * 1e3, 3),
                        "speedup": round(speedup, 3),
                        "identical": result == base_result,
                    }
                )
    finally:
        engine.configure()
        parallel.shutdown()
        monkeypatch.delenv(parallel.MAX_WORKERS_ENV_VAR, raising=False)

    cores = os.cpu_count() or 1
    floor_env = os.environ.get("BENCH_PARALLEL_MIN_SPEEDUP")
    gate_binds = cores >= GATE_WORKERS and PARALLEL_SCENARIO == GATE_SCENARIO
    floor = float(floor_env) if floor_env else (REQUIRED_SPEEDUP if gate_binds else None)
    gate_point = GATE_WORKERS if any(
        GATE_WORKERS in speedup_at[name] for name in KERNELS
    ) else max(w for name in KERNELS for w in speedup_at[name])

    payload = {
        "scenario": PARALLEL_SCENARIO,
        "cpu_count": cores,
        "required_speedup": floor,
        "gate_workers": gate_point,
        "gate_binds": floor is not None,
        "social_edges": san.number_of_social_edges(),
        "curve": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # Trajectory file: one entry per recorded run, (cores, kernel, speedup)
    # points only — the coarse history plotted across machines/PRs.
    trajectory_path = RESULTS_DIR / "BENCH_PARALLEL.json"
    trajectory = (
        json.loads(trajectory_path.read_text(encoding="utf-8"))
        if trajectory_path.exists()
        else []
    )
    trajectory.append(
        {
            "scenario": PARALLEL_SCENARIO,
            "cpu_count": cores,
            "points": [
                {"kernel": row["kernel"], "cores": row["workers"], "speedup": row["speedup"]}
                for row in rows
            ],
        }
    )
    trajectory_path.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )

    write_result(
        "bench_parallel",
        format_table(
            rows,
            title=(
                f"Parallel tier vs frozen single-core — scenario "
                f"{PARALLEL_SCENARIO}, {san.number_of_social_edges()} social "
                f"edges, {cores} cores"
            ),
        ),
    )

    # Bit-identity is unconditional: the parallel tier may never change a
    # number, whatever the machine.
    assert not mismatches, f"parallel tier diverged from frozen: {mismatches}"

    if floor is not None:
        for name in KERNELS:
            measured = speedup_at[name].get(gate_point)
            assert measured is not None and measured >= floor, (
                f"{name}: expected >= {floor}x at {gate_point} workers, "
                f"got {measured if measured is not None else 'n/a'}"
            )


def test_no_leaked_shared_memory_segments():
    """After the speedup bench (and its pool shutdown) no repro-owned
    segments may remain registered or on /dev/shm."""
    parallel.shutdown()
    assert parallel.live_segment_names() == []
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        leaked = [
            name
            for name in os.listdir(shm_dir)
            if name.startswith(parallel.SEGMENT_PREFIX)
        ]
        assert leaked == [], f"leaked shared-memory segments: {leaked}"
