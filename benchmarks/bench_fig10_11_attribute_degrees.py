"""Figures 10-11: attribute-induced degree distributions and their fits.

Paper result: the attribute degree of social nodes is best modelled by a
lognormal, whereas the social degree of attribute nodes is best modelled by a
power law; the fitted parameters drift slowly over the crawl.
"""

from repro.experiments import (
    figure10_attribute_degrees,
    figure11_attribute_fit_evolution,
    format_table,
)
from repro.fitting import lognormal_vs_power_law
from repro.metrics import attribute_degrees_of_social_nodes, social_degrees_of_attribute_nodes


def test_fig10_attribute_degree_families(benchmark, reference_san, write_result):
    result = benchmark.pedantic(
        figure10_attribute_degrees, args=(reference_san,), rounds=1, iterations=1
    )
    rows = [
        {
            "quantity": "attribute degree of social nodes",
            "best_fit": result["attribute_degree"]["best_fit"],
            "lognormal_mu": result["attribute_degree"]["lognormal_mu"],
            "lognormal_sigma": result["attribute_degree"]["lognormal_sigma"],
        },
        {
            "quantity": "social degree of attribute nodes",
            "best_fit": result["attribute_social_degree"]["best_fit"],
            "power_law_alpha": result["attribute_social_degree"]["power_law_alpha"],
        },
    ]
    write_result("fig10_attribute_degrees", format_table(rows, title="Figure 10 — attribute degree fits"))

    # Social degree of attribute nodes: heavy-tailed, power-law exponent ~2-3
    # (the paper measures ~2.0-2.1).
    alpha = result["attribute_social_degree"]["power_law_alpha"]
    assert 1.5 < alpha < 3.5

    # Attribute degree of social nodes: the lognormal beats the power law.
    attribute_degrees = [d for d in attribute_degrees_of_social_nodes(reference_san) if d >= 1]
    assert lognormal_vs_power_law(attribute_degrees).favours_first

    # Social degrees of attribute nodes: the power law is not decisively beaten
    # by the lognormal the way the social-node degrees are.
    attr_social = [d for d in social_degrees_of_attribute_nodes(reference_san) if d >= 1]
    social_result = lognormal_vs_power_law(attribute_degrees)
    attr_result = lognormal_vs_power_law(attr_social)
    assert attr_result.normalised_ratio < social_result.normalised_ratio + 5


def test_fig11_attribute_fit_evolution(benchmark, snapshots, write_result):
    result = benchmark.pedantic(
        figure11_attribute_fit_evolution, args=(snapshots,), rounds=1, iterations=1
    )
    rows = []
    for day, mu, sigma in result["attribute_degree_lognormal"]:
        rows.append({"series": "attribute_degree_lognormal", "day": day, "mu": mu, "sigma": sigma})
    for day, alpha in result["attribute_social_degree_alpha"]:
        rows.append({"series": "attribute_social_degree_alpha", "day": day, "alpha": alpha})
    write_result("fig11_attribute_fit_evolution", format_table(rows, title="Figure 11 — fit evolution"))

    lognormal_series = result["attribute_degree_lognormal"]
    alpha_series = result["attribute_social_degree_alpha"]
    assert len(lognormal_series) >= 4
    assert len(alpha_series) >= 4
    assert all(sigma > 0 for _, _, sigma in lognormal_series)
    assert all(1.2 < alpha < 4.0 for _, alpha in alpha_series)
