"""Columnar storage tier vs the TSV text path.

The out-of-core tentpole claims the binary columnar format makes frozen
graphs cheap to load and nearly free to *re*-load: a cold columnar read
into RAM beats the streaming TSV parse by ``REQUIRED_COLD_SPEEDUP``, a warm
mmap-backed open (the artifact cache's warm-hit path) beats it by
``REQUIRED_WARM_SPEEDUP``, and an mmap-backed graph costs at most
``MAX_RSS_BYTES_PER_EDGE`` of resident memory to open — the adjacency
stays on disk until a kernel touches it.  Metric payloads are asserted
byte-identical across all three load paths (TSV parse, columnar RAM read,
columnar mmap), so the fast path can never change a number.

The workload is a generated Algorithm 1 SAN at ``BENCH_STORAGE_SCALE``
steps (seed ``BENCH_SEED``); CI smoke legs shrink the scale while keeping
every gate binding — the RSS gate carries a small fixed allowance
(``RSS_SLACK_BYTES``) for interpreter noise so it binds at reduced scale
too.  Results go to ``benchmarks/results/bench_storage.{json,txt}`` plus a
trajectory entry in ``benchmarks/results/BENCH_STORAGE.json`` *before* any
assertion, so a failed gate still leaves the numbers on disk.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.algorithms.triangles import count_directed_triangles
from repro.experiments import format_table
from repro.graph import load_san_tsv, open_columnar, save_columnar, save_san_tsv
from repro.metrics.reciprocity import reciprocal_edge_count
from repro.models import SANModelParameters, generate_san_fast
from repro.synthetic.workloads import BENCH_SEED

#: Acceptance bars (overridable per leg, like bench_parallel's floors).
REQUIRED_COLD_SPEEDUP = float(os.environ.get("BENCH_STORAGE_MIN_COLD_SPEEDUP", "3.0"))
REQUIRED_WARM_SPEEDUP = float(os.environ.get("BENCH_STORAGE_MIN_WARM_SPEEDUP", "10.0"))
MAX_RSS_BYTES_PER_EDGE = float(os.environ.get("BENCH_STORAGE_MAX_RSS_PER_EDGE", "40"))
#: Fixed RSS allowance on top of the per-edge budget: allocator and
#: interpreter noise between two subprocesses, plus the decoded attribute
#: string table.  Keeps the per-edge gate binding at CI smoke scale.
RSS_SLACK_BYTES = 16 * 1024 * 1024

#: Generated-model steps of the measured workload (full scale by default).
STORAGE_SCALE = int(os.environ.get("BENCH_STORAGE_SCALE", "100000"))

RESULTS_DIR = Path(__file__).parent / "results"
ROUNDS = 3


def _best_of(function, rounds: int = ROUNDS):
    """Best-of-``rounds`` timing; returns ``(seconds, last_result)``."""
    best = math.inf
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def _metric_payload(san) -> str:
    """Label-order-invariant metric summary, serialized for byte comparison."""
    mutual, total = reciprocal_edge_count(san)
    degrees = sorted(int(d) for d in san.social.out_degree_array())
    histogram: dict = {}
    for degree in degrees:
        histogram[degree] = histogram.get(degree, 0) + 1
    return json.dumps(
        {
            "social_nodes": san.number_of_social_nodes(),
            "social_edges": san.number_of_social_edges(),
            "attribute_edges": san.number_of_attribute_edges(),
            "mutual_links": mutual,
            "total_links": total,
            "triangles": count_directed_triangles(san),
            "out_degree_histogram": histogram,
        },
        sort_keys=True,
    )


_SUBPROCESS_PRELUDE = """\
import resource, sys
import numpy as np
from repro.graph import open_columnar
"""

_BASELINE_SCRIPT = (
    _SUBPROCESS_PRELUDE
    + """\
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024)
"""
)

#: Open the columnar file mmap-backed and touch the read-only surface a
#: consumer touches on open (counts plus a degree sample) — NOT the full
#: adjacency, which is exactly what mmap keeps off the resident set.
_MMAP_OPEN_SCRIPT = (
    _SUBPROCESS_PRELUDE
    + """\
san = open_columnar(sys.argv[1], mmap_mode="r")
checksum = san.number_of_social_edges() + san.number_of_attribute_edges()
checksum += int(san.social.out_degree_array()[:1000].sum())
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024)
"""
)


def _subprocess_rss(script: str, *args: str) -> int:
    """Peak RSS in bytes of a fresh interpreter running ``script``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in (str(Path(__file__).parent.parent / "src"),
                          env.get("PYTHONPATH")) if path
    )
    completed = subprocess.run(
        [sys.executable, "-c", script, *args],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return int(completed.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def storage_workload(tmp_path_factory):
    """The generated SAN written once as a TSV pair and a columnar file."""
    root = tmp_path_factory.mktemp("storage")
    san = generate_san_fast(
        SANModelParameters(steps=STORAGE_SCALE), rng=BENCH_SEED
    ).san
    social_tsv = root / "san.social.tsv"
    attrs_tsv = root / "san.attrs.tsv"
    columnar = root / "san.col"
    save_san_tsv(san, social_tsv, attrs_tsv)
    save_columnar(san, columnar)
    return {
        "san": san,
        "social_tsv": social_tsv,
        "attrs_tsv": attrs_tsv,
        "columnar": columnar,
    }


def test_storage_tier_gates(storage_workload, write_result):
    san = storage_workload["san"]
    social_tsv = storage_workload["social_tsv"]
    attrs_tsv = storage_workload["attrs_tsv"]
    columnar = storage_workload["columnar"]

    total_edges = san.number_of_social_edges() + san.number_of_attribute_edges()

    # The three load paths.  The TSV parse is the pre-columnar warm-hit
    # cost (the artifact cache used to re-parse text on every hit).
    tsv_seconds, tsv_san = _best_of(
        lambda: load_san_tsv(social_tsv, attrs_tsv, frozen=True)
    )
    cold_seconds, ram_san = _best_of(lambda: open_columnar(columnar, mmap_mode=None))
    warm_seconds, mmap_san = _best_of(lambda: open_columnar(columnar, mmap_mode="r"))

    cold_speedup = tsv_seconds / cold_seconds
    warm_speedup = tsv_seconds / warm_seconds

    payloads = {
        "tsv": _metric_payload(tsv_san),
        "columnar_ram": _metric_payload(ram_san),
        "columnar_mmap": _metric_payload(mmap_san),
    }

    baseline_rss = _subprocess_rss(_BASELINE_SCRIPT)
    open_rss = _subprocess_rss(_MMAP_OPEN_SCRIPT, str(columnar))
    rss_delta = max(0, open_rss - baseline_rss)
    rss_budget = MAX_RSS_BYTES_PER_EDGE * total_edges + RSS_SLACK_BYTES

    columnar_bytes = columnar.stat().st_size
    tsv_bytes = social_tsv.stat().st_size + attrs_tsv.stat().st_size
    rows = [
        {
            "path": "tsv parse (frozen=True)",
            "seconds": round(tsv_seconds, 4),
            "speedup": 1.0,
            "disk_bytes": tsv_bytes,
        },
        {
            "path": "columnar cold (RAM)",
            "seconds": round(cold_seconds, 4),
            "speedup": round(cold_speedup, 2),
            "disk_bytes": columnar_bytes,
        },
        {
            "path": "columnar warm (mmap)",
            "seconds": round(warm_seconds, 4),
            "speedup": round(warm_speedup, 2),
            "disk_bytes": columnar_bytes,
        },
    ]

    payload = {
        "scale_steps": STORAGE_SCALE,
        "social_edges": san.number_of_social_edges(),
        "attribute_edges": san.number_of_attribute_edges(),
        "tsv_parse_seconds": round(tsv_seconds, 6),
        "columnar_cold_seconds": round(cold_seconds, 6),
        "columnar_mmap_seconds": round(warm_seconds, 6),
        "cold_speedup": round(cold_speedup, 3),
        "warm_speedup": round(warm_speedup, 3),
        "required_cold_speedup": REQUIRED_COLD_SPEEDUP,
        "required_warm_speedup": REQUIRED_WARM_SPEEDUP,
        "tsv_disk_bytes": tsv_bytes,
        "columnar_disk_bytes": columnar_bytes,
        "columnar_disk_bytes_per_edge": round(columnar_bytes / total_edges, 2),
        "mmap_open_rss_delta_bytes": rss_delta,
        "mmap_open_rss_bytes_per_edge": round(rss_delta / total_edges, 2),
        "max_rss_bytes_per_edge": MAX_RSS_BYTES_PER_EDGE,
        "rss_slack_bytes": RSS_SLACK_BYTES,
        "payloads_identical": len(set(payloads.values())) == 1,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_storage.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # Trajectory file: one coarse entry per recorded run, across PRs/machines.
    trajectory_path = RESULTS_DIR / "BENCH_STORAGE.json"
    trajectory = (
        json.loads(trajectory_path.read_text(encoding="utf-8"))
        if trajectory_path.exists()
        else []
    )
    trajectory.append(
        {
            "scale_steps": STORAGE_SCALE,
            "edges": total_edges,
            "cold_speedup": round(cold_speedup, 3),
            "warm_speedup": round(warm_speedup, 3),
            "rss_bytes_per_edge": round(rss_delta / total_edges, 2),
        }
    )
    trajectory_path.write_text(
        json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
    )

    write_result(
        "bench_storage",
        format_table(
            rows,
            title=(
                f"Columnar storage vs TSV — {STORAGE_SCALE} steps, "
                f"{total_edges} edges, mmap open RSS delta "
                f"{rss_delta / 1e6:.1f} MB"
            ),
        ),
    )

    # Identity is unconditional: the storage tier may never change a number.
    assert len(set(payloads.values())) == 1, (
        "metric payloads diverge across load paths: "
        + ", ".join(sorted(payloads))
    )

    assert cold_speedup >= REQUIRED_COLD_SPEEDUP, (
        f"columnar cold load: expected >= {REQUIRED_COLD_SPEEDUP}x over the "
        f"TSV parse, got {cold_speedup:.2f}x"
    )
    assert warm_speedup >= REQUIRED_WARM_SPEEDUP, (
        f"columnar warm mmap open: expected >= {REQUIRED_WARM_SPEEDUP}x over "
        f"the TSV parse, got {warm_speedup:.2f}x"
    )
    assert rss_delta <= rss_budget, (
        f"mmap-backed open cost {rss_delta} bytes RSS "
        f"({rss_delta / total_edges:.1f} bytes/edge); budget is "
        f"{MAX_RSS_BYTES_PER_EDGE} bytes/edge + {RSS_SLACK_BYTES} slack "
        f"= {rss_budget:.0f}"
    )


def test_kernels_bit_identical_on_mmap_inputs(storage_workload):
    """Engine kernels see identical numbers whether the CSR lives in RAM or
    in a memory-mapped file (the sanitizer's parity invariant, spot-checked
    here on the two heaviest whole-graph kernels)."""
    columnar = storage_workload["columnar"]
    ram = open_columnar(columnar, mmap_mode=None)
    mapped = open_columnar(columnar, mmap_mode="r")
    assert count_directed_triangles(ram) == count_directed_triangles(mapped)
    assert reciprocal_edge_count(ram) == reciprocal_edge_count(mapped)
