"""Engine-dispatched frozen kernels vs the portable implementations.

PR 1's ``bench_frozen_backend.py`` covers the metric groups ported with the
original FrozenSAN tentpole (degrees, reciprocity, joint degree, clustering,
triangles).  This bench covers the kernels added with the dispatch engine —
connected components, the HyperANF effective diameter, batched random walks,
and batched link-prediction scoring — asserting the >= 3x acceptance bar on
the same ~50k-edge synthetic Google+ workload and writing the comparison
table to ``benchmarks/results/bench_engine.txt``.
"""

from __future__ import annotations

import math
import time

import pytest

from repro import engine
from repro.algorithms.components import weakly_connected_components
from repro.algorithms.hyperanf import (
    effective_diameter_from_neighbourhood,
    neighbourhood_function,
)
from repro.algorithms.random_walk import random_walks
from repro.applications.link_prediction import pair_features_batch, rank_candidate_pairs
from repro.experiments import format_table
from repro.synthetic import BENCH_SEED, GooglePlusConfig, simulate_google_plus
from repro.utils.rng import ensure_rng

#: The acceptance bar for every engine kernel group.
REQUIRED_SPEEDUP = 3.0
MIN_EDGES = 50_000

#: HyperANF register precision used by the diameter group (2**5 registers —
#: enough for a stable estimate while keeping the *mutable* side affordable).
PRECISION = 5

NUM_WALKS = 10_000
WALK_LENGTH = 16
NUM_PAIRS = 4000
TOP_K = 100


@pytest.fixture(scope="module", autouse=True)
def _pin_frozen_tier():
    """Measure the frozen single-core kernels themselves: on a many-core
    machine the parallel tier would otherwise shadow them above its size
    threshold (this workload is ~50k edges).  bench_parallel.py owns the
    parallel-tier measurements."""
    engine.configure(parallel_threshold=None)
    yield
    engine.configure()


@pytest.fixture(scope="module")
def backend_pair():
    """A ~50k-edge synthetic Google+ SAN in both backends."""
    config = GooglePlusConfig(total_users=6000, num_days=98)
    san = simulate_google_plus(config, rng=BENCH_SEED).final_san()
    assert san.number_of_social_edges() >= MIN_EDGES
    return san, san.freeze()


@pytest.fixture(scope="module")
def candidate_pairs(backend_pair):
    """Fixed random candidate pairs for the link-prediction scoring group."""
    san, _ = backend_pair
    generator = ensure_rng(20120835)
    nodes = list(san.social_nodes())
    return [
        (nodes[generator.randrange(len(nodes))], nodes[generator.randrange(len(nodes))])
        for _ in range(NUM_PAIRS)
    ]


@pytest.fixture(scope="module")
def walk_starts(backend_pair):
    san, _ = backend_pair
    generator = ensure_rng(4242)
    nodes = list(san.social_nodes())
    return [nodes[generator.randrange(len(nodes))] for _ in range(NUM_WALKS)]


def _best_of(function, graph, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        function(graph)
        times.append(time.perf_counter() - start)
    return min(times)


def _best_of_cold(function, san, rounds: int) -> float:
    """Time ``function`` on a freshly frozen graph each round.

    Used for the groups whose sparse products are memoized on the frozen SAN
    (link-prediction scoring): re-freezing guarantees every timed call does
    real work, with only the undirected CSR — shared infrastructure every
    group relies on — pre-warmed.
    """
    times = []
    for _ in range(rounds):
        fresh = san.freeze()
        fresh.social.undirected_csr()
        start = time.perf_counter()
        function(fresh)
        times.append(time.perf_counter() - start)
    return min(times)


def test_engine_kernel_speedups(backend_pair, candidate_pairs, walk_starts, write_result):
    san, frozen = backend_pair
    # Pre-warm the frozen graph's lazy CSR caches so the table reports
    # steady-state per-call cost (the one-time freeze cost is covered by
    # bench_frozen_backend.py).
    frozen.social.undirected_csr()
    frozen.social.edge_arrays()

    groups = {
        "components": (
            lambda g: weakly_connected_components(g.social),
            {"mutable_rounds": 2, "frozen_rounds": 3, "memoized": False},
        ),
        "effective_diameter": (
            lambda g: effective_diameter_from_neighbourhood(
                neighbourhood_function(g.social, precision=PRECISION)
            ),
            {"mutable_rounds": 1, "frozen_rounds": 2, "memoized": False},
        ),
        "random_walks": (
            lambda g: random_walks(
                g.social, walk_starts, WALK_LENGTH, degree_cap=100, rng=7
            ),
            {"mutable_rounds": 1, "frozen_rounds": 2, "memoized": False},
        ),
        "link_prediction": (
            lambda g: rank_candidate_pairs(g, top_k=TOP_K, metric="adamic_adar"),
            {"mutable_rounds": 1, "frozen_rounds": 2, "memoized": True},
        ),
    }

    rows = []
    speedups = {}
    for name, (function, options) in groups.items():
        mutable_seconds = _best_of(function, san, rounds=options["mutable_rounds"])
        if options["memoized"]:
            frozen_seconds = _best_of_cold(function, san, rounds=options["frozen_rounds"])
        else:
            frozen_seconds = _best_of(function, frozen, rounds=options["frozen_rounds"])
        speedups[name] = mutable_seconds / frozen_seconds
        rows.append(
            {
                "kernel_group": name,
                "mutable_ms": round(mutable_seconds * 1e3, 2),
                "frozen_ms": round(frozen_seconds * 1e3, 3),
                "speedup": round(speedups[name], 1),
            }
        )

    write_result(
        "bench_engine",
        format_table(
            rows,
            title=(
                f"Engine kernels, frozen vs mutable — "
                f"{san.number_of_social_nodes()} social nodes, "
                f"{san.number_of_social_edges()} social edges"
            ),
        ),
    )

    # The kernels must agree before any timing claim counts.
    assert weakly_connected_components(frozen.social) == weakly_connected_components(
        san.social
    )
    mutable_totals = neighbourhood_function(san.social, precision=PRECISION)
    frozen_totals = neighbourhood_function(frozen.social, precision=PRECISION)
    assert len(mutable_totals) == len(frozen_totals)
    for left, right in zip(mutable_totals, frozen_totals):
        assert math.isclose(left, right, rel_tol=1e-9)
    sample = candidate_pairs[:200]
    for left, right in zip(
        pair_features_batch(san, sample), pair_features_batch(frozen, sample)
    ):
        assert set(left) == set(right)
        for key in left:
            assert math.isclose(left[key], right[key], rel_tol=1e-9, abs_tol=1e-12)
    mutable_top = rank_candidate_pairs(san, top_k=TOP_K, metric="common_neighbors")
    frozen_top = rank_candidate_pairs(frozen, top_k=TOP_K, metric="common_neighbors")
    assert [(s, t, float(score)) for s, t, score in mutable_top] == [
        (s, t, float(score)) for s, t, score in frozen_top
    ]

    for name, speedup in speedups.items():
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{name}: expected >= {REQUIRED_SPEEDUP}x, got {speedup:.1f}x"
        )


def test_report_pipeline_freezes_once(backend_pair):
    """The freeze-once battery must beat the same battery on the mutable SAN
    even when its single freeze() is charged to it."""
    from repro.metrics.summary import san_metric_report

    san, _ = backend_pair
    frozen_start = time.perf_counter()
    report_frozen = san_metric_report(
        san, include_diameter=True, clustering_samples=500, rng=1, freeze=True
    )
    frozen_seconds = time.perf_counter() - frozen_start

    mutable_start = time.perf_counter()
    report_mutable = san_metric_report(
        san, include_diameter=True, clustering_samples=500, rng=1
    )
    mutable_seconds = time.perf_counter() - mutable_start

    assert set(report_frozen) == set(report_mutable)
    assert frozen_seconds < mutable_seconds
