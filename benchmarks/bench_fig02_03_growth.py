"""Figures 2-3: growth of social/attribute nodes and links over the crawl.

Paper shape: three distinct growth phases — fast bootstrap, stabilised
invitation-only growth, and a renewed surge at the public release.
"""

from repro.experiments import figure2_3_growth, format_series, series_trend
from repro.metrics import PhaseBoundaries, phase_trends


def test_fig02_03_growth(benchmark, snapshots, write_result, evolution):
    result = benchmark.pedantic(figure2_3_growth, args=(snapshots,), rounds=1, iterations=1)

    lines = []
    for key, series in result.items():
        lines.append(format_series(series, x_label="day", y_label=key, title=f"Figure 2/3 — {key}"))
        lines.append("")
    write_result("fig02_03_growth", "\n".join(lines))

    phases = evolution.phases
    for key in ("social_nodes", "attribute_nodes", "social_links", "attribute_links"):
        series = result[key]
        values = [value for _, value in series]
        assert values == sorted(values), f"{key} must grow monotonically"
        trends = phase_trends(series, phases)
        # Phase III (public release) adds nodes/links at least as fast per day
        # as the stabilised phase II.
        phase2_days = phases.phase_two_end - phases.phase_one_end
        phase3_days = max(series[-1][0] - phases.phase_two_end, 1)
        assert trends[3] / phase3_days > 0
        assert series_trend(series) == "increasing"


def test_fig02_nodes_accelerate_at_public_release(benchmark, snapshots, evolution):
    def phase_rates():
        series = figure2_3_growth(snapshots)["social_nodes"]
        phases = evolution.phases
        by_phase = {1: [], 2: [], 3: []}
        for day, value in series:
            by_phase[phases.phase_of(day)].append((day, value))
        rates = {}
        for phase, points in by_phase.items():
            if len(points) >= 2:
                points.sort()
                rates[phase] = (points[-1][1] - points[0][1]) / max(points[-1][0] - points[0][0], 1)
        return rates

    rates = benchmark.pedantic(phase_rates, rounds=1, iterations=1)
    # The public-release surge grows faster than the stabilised phase.
    assert rates[3] > rates[2]
