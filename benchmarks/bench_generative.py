"""Generation-engine benchmark: vectorized vs loop Algorithm 1 at scale.

Runs both engines on the canonical generative workload
(:func:`repro.synthetic.generative_params`) with snapshots enabled, asserts
the vectorized engine's speedup bar, re-checks the KS distributional-parity
gate at benchmark scale, and writes both a rendered table and a
machine-readable timing JSON to ``benchmarks/results/``.

The loop side pays an O(V + E) ``san.copy()`` per snapshot; the vectorized
side records delta watermarks during generation and is charged here with
materializing *every* snapshot plus the final state — the conservative
accounting — and must still clear the bar.

``BENCH_GENERATIVE_STEPS`` scales the workload: the default 50k-step run
must reach the >= 5x acceptance bar; smaller smoke runs (the CI benchmark
leg uses 4000 steps) assert a reduced floor because the loop engine's
superlinear LAPA community scans have not kicked in yet at toy scale.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments import format_table
from repro.metrics import attribute_degrees_of_social_nodes, social_out_degrees
from repro.models import generate_san, generate_san_fast
from repro.synthetic import BENCH_SEED, generative_params
from repro.utils import ks_two_sample_threshold, two_sample_ks_statistic

STEPS = int(os.environ.get("BENCH_GENERATIVE_STEPS", "50000"))
SNAPSHOT_EVERY = max(STEPS // 10, 1)

#: Acceptance bar: >= 5x at the full 50k-step workload; smoke-scale runs
#: (CI) assert a reduced floor since the loop's superlinear costs need scale.
REQUIRED_SPEEDUP = 5.0 if STEPS >= 50_000 else 2.0
KS_ALPHA = 0.001


def test_generative_engine_speedup_and_parity(write_result, results_dir):
    params = generative_params(STEPS)

    # The vectorized engine is timed first: the loop engine leaves a large
    # dict-of-sets SAN plus per-snapshot copies on the heap, which would
    # otherwise tax the competitor's run with allocator/GC pressure.
    fast_start = time.perf_counter()
    fast_run = generate_san_fast(params, rng=BENCH_SEED, snapshot_every=SNAPSHOT_EVERY)
    generate_seconds = time.perf_counter() - fast_start
    materialize_start = time.perf_counter()
    fast_snapshots = fast_run.snapshots
    fast_final = fast_run.san
    materialize_seconds = time.perf_counter() - materialize_start
    fast_seconds = generate_seconds + materialize_seconds

    loop_start = time.perf_counter()
    loop_run = generate_san(
        params, rng=BENCH_SEED, record_history=False, snapshot_every=SNAPSHOT_EVERY
    )
    loop_seconds = time.perf_counter() - loop_start

    # Measure everything and write the result artifacts *before* asserting,
    # so a failing run still leaves its numbers in benchmarks/results/ for
    # the CI artifact upload to collect.
    ks_out = two_sample_ks_statistic(
        list(social_out_degrees(loop_run.san)), list(social_out_degrees(fast_final))
    )
    ks_attr = two_sample_ks_statistic(
        list(attribute_degrees_of_social_nodes(loop_run.san)),
        list(attribute_degrees_of_social_nodes(fast_final)),
    )
    num_nodes = fast_final.number_of_social_nodes()
    ks_threshold = ks_two_sample_threshold(num_nodes, num_nodes, alpha=KS_ALPHA)
    speedup = loop_seconds / fast_seconds
    payload = {
        "steps": STEPS,
        "snapshot_every": SNAPSHOT_EVERY,
        "social_nodes": num_nodes,
        "social_edges": fast_final.number_of_social_edges(),
        "loop_seconds": round(loop_seconds, 3),
        "fast_generate_seconds": round(generate_seconds, 3),
        "fast_materialize_seconds": round(materialize_seconds, 3),
        "fast_seconds": round(fast_seconds, 3),
        "speedup": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "ks_out_degree": round(ks_out, 5),
        "ks_attribute_degree": round(ks_attr, 5),
        "ks_threshold": round(ks_threshold, 5),
    }
    (results_dir / "bench_generative.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    write_result(
        "bench_generative",
        format_table(
            [
                {
                    "engine": "loop",
                    "generate_s": round(loop_seconds, 2),
                    "materialize_s": 0.0,
                    "total_s": round(loop_seconds, 2),
                },
                {
                    "engine": "vectorized",
                    "generate_s": round(generate_seconds, 2),
                    "materialize_s": round(materialize_seconds, 2),
                    "total_s": round(fast_seconds, 2),
                },
            ],
            title=(
                f"Algorithm 1 engines — {STEPS} steps, "
                f"{fast_final.number_of_social_edges()} social edges, "
                f"{len(fast_snapshots)} snapshots, speedup {speedup:.1f}x "
                f"(KS out {ks_out:.4f} / attr {ks_attr:.4f} < {ks_threshold:.4f})"
            ),
        ),
    )

    # ------------------------------------------------------------------
    # Structural sanity: same process, same network shape.
    # ------------------------------------------------------------------
    assert fast_final.number_of_social_nodes() == loop_run.san.number_of_social_nodes()
    assert len(fast_snapshots) == len(loop_run.snapshots)
    assert [step for step, _ in fast_snapshots] == [
        step for step, _ in loop_run.snapshots
    ]

    # ------------------------------------------------------------------
    # Distributional-parity gate at benchmark scale.
    # ------------------------------------------------------------------
    assert ks_out < ks_threshold, f"out-degree KS {ks_out:.4f} >= {ks_threshold:.4f}"
    assert ks_attr < ks_threshold, (
        f"attribute-degree KS {ks_attr:.4f} >= {ks_threshold:.4f}"
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized engine: expected >= {REQUIRED_SPEEDUP}x at {STEPS} steps, "
        f"got {speedup:.1f}x"
    )


def test_delta_snapshots_cheaper_than_copies(write_result):
    """Recording watermarks must be ~free relative to per-snapshot copies.

    Compares the same vectorized run with and without snapshots enabled: the
    delta design records (step, counts) tuples, so the generation-time
    overhead of 10 snapshots must be within noise (< 20%).
    """
    steps = min(STEPS, 10_000)
    every = max(steps // 10, 1)
    params = generative_params(steps)

    plain_start = time.perf_counter()
    generate_san_fast(params, rng=BENCH_SEED)
    plain_seconds = time.perf_counter() - plain_start

    marked_start = time.perf_counter()
    marked = generate_san_fast(params, rng=BENCH_SEED, snapshot_every=every)
    marked_seconds = time.perf_counter() - marked_start

    # Periodic watermarks plus the appended final one when steps % every != 0.
    expected_marks = steps // every + (0 if steps % every == 0 else 1)
    assert len(marked.marks) == expected_marks
    assert marked.marks[-1].step == steps
    # Generous wall-clock guard (sub-second runs on shared CI runners are
    # noisy); the strict property — marks are count tuples, not copies — is
    # covered by the bookkeeping asserts above, and the table reports the
    # actual overhead for inspection.
    assert marked_seconds < plain_seconds * 2.0 + 0.5
    write_result(
        "bench_generative_snapshots",
        format_table(
            [
                {
                    "mode": "no_snapshots",
                    "generate_s": round(plain_seconds, 3),
                },
                {
                    "mode": "10_watermarks",
                    "generate_s": round(marked_seconds, 3),
                },
            ],
            title=f"Delta-snapshot recording overhead — {steps} steps",
        ),
    )
