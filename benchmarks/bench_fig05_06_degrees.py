"""Figures 5-6: social degree distributions and the evolution of their fits.

Paper result: both in- and out-degree are best modelled by a discrete
lognormal rather than a power law, and the fitted (mu, sigma) evolve smoothly
over the crawl.
"""

from repro.experiments import (
    figure5_degree_distributions,
    figure6_lognormal_parameter_evolution,
    format_table,
)
from repro.fitting import lognormal_vs_power_law
from repro.metrics import social_in_degrees, social_out_degrees


def test_fig05_degree_distributions_lognormal(benchmark, reference_san, write_result):
    result = benchmark.pedantic(
        figure5_degree_distributions, args=(reference_san,), rounds=1, iterations=1
    )

    rows = []
    for name in ("outdegree", "indegree"):
        entry = result[name]
        rows.append(
            {
                "degree": name,
                "best_fit": entry["best_fit"],
                "lognormal_mu": entry["lognormal_mu"],
                "lognormal_sigma": entry["lognormal_sigma"],
                "power_law_alpha": entry["power_law_alpha"],
            }
        )
    write_result("fig05_degree_distributions", format_table(rows, title="Figure 5 — degree fits"))

    # Lognormal must beat the pure power law on both degree directions.
    for degrees in (social_out_degrees(reference_san), social_in_degrees(reference_san)):
        positive = [d for d in degrees if d >= 1]
        assert lognormal_vs_power_law(positive).favours_first
    for name in ("outdegree", "indegree"):
        assert result[name]["lognormal_log_likelihood"] > result[name]["power_law_log_likelihood"]
        assert 0.5 < result[name]["lognormal_sigma"] < 2.5


def test_fig06_lognormal_parameter_evolution(benchmark, snapshots, write_result):
    result = benchmark.pedantic(
        figure6_lognormal_parameter_evolution, args=(snapshots,), rounds=1, iterations=1
    )
    rows = []
    for name, series in result.items():
        for day, mu, sigma in series:
            rows.append({"degree": name, "day": day, "mu": mu, "sigma": sigma})
    write_result("fig06_lognormal_evolution", format_table(rows, title="Figure 6 — lognormal fits over time"))

    for name in ("outdegree", "indegree"):
        series = result[name]
        assert len(series) >= 5
        # Parameters stay in a plausible band throughout the evolution.
        assert all(0.0 < mu < 4.0 for _, mu, _ in series)
        assert all(0.2 < sigma < 3.0 for _, _, sigma in series)
