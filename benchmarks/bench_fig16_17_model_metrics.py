"""Figures 16-17: generated SANs vs the reference — degree families, JDD, clustering.

Paper results: our model reproduces the lognormal social degrees, the lognormal
attribute degree of social nodes and the power-law social degree of attribute
nodes, while the Zhel baseline produces power-law-style social degrees and a
non-lognormal attribute degree; our model's attribute knn and clustering
distributions track the reference much more closely than Zhel's.
"""

from repro.experiments import (
    figure16_model_degree_distributions,
    figure17_jdd_and_clustering,
    format_table,
)


def test_fig16_degree_distribution_families(
    benchmark, reference_san, model_run, zhel_run, write_result
):
    result = benchmark.pedantic(
        figure16_model_degree_distributions,
        args=(reference_san, model_run.san, zhel_run.san),
        rounds=1,
        iterations=1,
    )

    rows = []
    for network, fits in result.items():
        for quantity, entry in fits.items():
            rows.append({"network": network, "quantity": quantity, **{
                key: value for key, value in entry.items() if key != "distribution"
            }})
    write_result("fig16_degree_families", format_table(rows, title="Figure 16 — degree fits per network"))

    reference = result["reference"]
    model = result["san_model"]
    zhel = result["zhel"]

    # Our model reproduces the lognormal-vs-power-law advantage of the
    # reference for the social degrees; Zhel's advantage is smaller (its
    # degrees are power-law-style).
    for quantity in ("outdegree", "indegree"):
        assert model[quantity]["lognormal_minus_power_ll"] > 0
        model_advantage = model[quantity]["lognormal_minus_power_ll"] / max(
            1, model[quantity].get("power_law_alpha", 1)
        )
        assert (
            zhel[quantity]["lognormal_minus_power_ll"]
            < model[quantity]["lognormal_minus_power_ll"]
        )

    # The attribute degree of social nodes: our model matches the reference's
    # lognormal mu within a reasonable band; Zhel is further away or worse.
    reference_mu = reference["attribute_degree"]["lognormal_mu"]
    model_mu = model["attribute_degree"]["lognormal_mu"]
    zhel_mu = zhel["attribute_degree"]["lognormal_mu"]
    assert abs(model_mu - reference_mu) <= abs(zhel_mu - reference_mu) + 0.5

    # Social degree of attribute nodes is heavy tailed (power-law-like) in both
    # the reference and our model.
    assert 1.3 < reference["attribute_social_degree"]["power_law_alpha"] < 3.8
    assert 1.3 < model["attribute_social_degree"]["power_law_alpha"] < 3.8


def test_fig17_jdd_and_clustering_match(
    benchmark, reference_san, model_run, zhel_run, write_result
):
    result = benchmark.pedantic(
        figure17_jdd_and_clustering,
        args=(model_run.san, zhel_run.san, reference_san),
        rounds=1,
        iterations=1,
    )

    def mean_y(points):
        return sum(v for _, v in points) / len(points) if points else 0.0

    rows = []
    for network in ("reference", "san_model", "zhel"):
        rows.append(
            {
                "network": network,
                "mean_attribute_knn": mean_y(result[network]["attribute_knn"]),
                "mean_social_clustering": mean_y(result[network]["social_clustering"]),
                "mean_attribute_clustering": mean_y(result[network]["attribute_clustering"]),
            }
        )
    write_result("fig17_jdd_clustering", format_table(rows, title="Figure 17 — JDD / clustering summaries"))

    reference_clustering = mean_y(result["reference"]["attribute_clustering"])
    model_clustering = mean_y(result["san_model"]["attribute_clustering"])
    zhel_clustering = mean_y(result["zhel"]["attribute_clustering"])
    # Our model's attribute clustering is at least as close to the reference as Zhel's.
    assert abs(model_clustering - reference_clustering) <= abs(
        zhel_clustering - reference_clustering
    ) + 0.05

    reference_knn = mean_y(result["reference"]["attribute_knn"])
    model_knn = mean_y(result["san_model"]["attribute_knn"])
    zhel_knn = mean_y(result["zhel"]["attribute_knn"])
    assert abs(model_knn - reference_knn) <= abs(zhel_knn - reference_knn) + 1.0
