"""Appendix A: the constant-time clustering-coefficient approximation.

The sampled estimator must land within the paper's error bound (|error| <= eps
with probability >= 1 - 1/nu) and be dramatically cheaper than the exact
computation on large SANs.
"""

import time

from repro.algorithms import (
    approximate_social_clustering,
    average_social_clustering_coefficient,
    required_samples,
)
from repro.experiments import format_table


def test_appendix_a_accuracy_and_speed(benchmark, reference_san, write_result):
    exact = average_social_clustering_coefficient(reference_san)

    epsilon, nu = 0.02, 20.0
    samples = required_samples(epsilon, nu)

    def sampled():
        return approximate_social_clustering(
            reference_san, epsilon=epsilon, nu=nu, rng=7
        )

    start = time.perf_counter()
    approx = benchmark.pedantic(sampled, rounds=1, iterations=1)
    sampled_seconds = time.perf_counter() - start

    start = time.perf_counter()
    exact_again = average_social_clustering_coefficient(reference_san)
    exact_seconds = time.perf_counter() - start

    rows = [
        {"quantity": "exact C_s", "value": exact},
        {"quantity": "sampled C_s", "value": approx},
        {"quantity": "epsilon", "value": epsilon},
        {"quantity": "samples K", "value": samples},
        {"quantity": "sampled seconds", "value": sampled_seconds},
        {"quantity": "exact seconds", "value": exact_seconds},
    ]
    write_result("appendix_clustering", format_table(rows, title="Appendix A — sampled clustering"))

    # Allow 3x the nominal epsilon to keep the bench robust to the 1/nu failure
    # probability; the unit tests check the bound more tightly.
    assert abs(approx - exact) < 3 * epsilon + 0.01
    assert exact_again == exact


def test_appendix_a_error_bound_over_repeats(benchmark, reference_san, write_result):
    """Empirical check of the Theorem 3 guarantee over repeated runs."""
    exact = average_social_clustering_coefficient(reference_san)
    epsilon, nu = 0.05, 10.0

    def repeat():
        failures = 0
        repeats = 10
        for seed in range(repeats):
            estimate = approximate_social_clustering(
                reference_san, epsilon=epsilon, nu=nu, rng=seed
            )
            if abs(estimate - exact) > epsilon:
                failures += 1
        return failures, repeats

    failures, repeats = benchmark.pedantic(repeat, rounds=1, iterations=1)
    write_result(
        "appendix_clustering_bound",
        f"exact={exact:.4f} epsilon={epsilon} nu={nu} failures={failures}/{repeats}",
    )
    # Theorem 3 allows a 1/nu = 10% failure rate; give a small margin.
    assert failures <= max(2, int(repeats / nu) + 1)
