"""Figure 15: PAPA vs LAPA log-likelihood improvements over PA.

Paper results on Google+: PA is ~7.9% better than the uniform model; the best
LAPA model (alpha = 1, beta = 200) adds a further ~6.1%; alpha = 1 is optimal
for every beta; LAPA outperforms PAPA.
"""

from repro.experiments import figure15_attachment_comparison, format_table
from repro.models import DEFAULT_LIKELIHOOD_SEED


def test_fig15_attachment_model_sweep(benchmark, evolution, write_result):
    history = evolution.arrival_history(start_day=evolution.num_days // 3)

    result = benchmark.pedantic(
        figure15_attachment_comparison,
        args=(history,),
        kwargs={
            "alphas": (0.0, 0.5, 1.0, 1.5),
            "papa_betas": (0.0, 2.0, 4.0, 8.0),
            "lapa_betas": (0.0, 10.0, 100.0, 200.0),
            "max_links": 1200,
            # Explicit seed: the reported improvements are a deterministic
            # function of the workload, not of the run.
            "rng": DEFAULT_LIKELIHOOD_SEED,
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    for family in ("papa", "lapa"):
        for (alpha, beta), improvement in sorted(result[family].items()):
            rows.append(
                {"family": family, "alpha": alpha, "beta": beta, "improvement_over_pa": improvement}
            )
    rows.append({"family": "pa_over_uniform", "alpha": 1.0, "beta": 0.0,
                 "improvement_over_pa": result["pa_over_uniform"]})
    write_result("fig15_attachment", format_table(rows, title="Figure 15 — relative improvement over PA"))

    # PA beats the uniform model (paper: 7.9%).
    assert result["pa_over_uniform"] > 0

    lapa = result["lapa"]
    papa = result["papa"]
    # Some LAPA model with alpha = 1 improves on plain PA (paper: ~6.1% at beta=200).
    best_lapa_alpha1 = max(
        improvement for (alpha, beta), improvement in lapa.items() if alpha == 1.0
    )
    assert best_lapa_alpha1 > 0

    # The optimal alpha is interior and near one: at the best beta, alpha = 1
    # clearly beats both the degree-blind (alpha = 0) and the super-linear
    # (alpha = 1.5) variants, as in the paper's Figure 15.
    best_beta = max(
        (beta for (alpha, beta) in lapa if alpha == 1.0),
        key=lambda beta: lapa[(1.0, beta)],
    )
    for alpha in (0.0, 1.5):
        if (alpha, best_beta) in lapa:
            assert lapa[(1.0, best_beta)] > lapa[(alpha, best_beta)]

    # The best LAPA model is at least as good as the best PAPA model (paper:
    # "LAPA models perform better than PAPA models").  A small tolerance keeps
    # the check robust to sampling noise in the scored-link subsample.
    assert max(lapa.values()) >= max(papa.values()) - 0.003
