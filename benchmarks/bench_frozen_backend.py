"""Frozen (CSR numpy) vs mutable (dict-of-sets) backend on the hot metrics.

The FrozenSAN tentpole claims the measurement layer gets at least a 3x
speedup on the degree, reciprocity and joint-degree metrics for a ~50k-edge
synthetic Google+ graph once the SAN is compacted to CSR form.  This bench
builds exactly that workload, times every ported metric group on both
backends, verifies the results agree, and writes the comparison table to
``benchmarks/results/bench_frozen_backend.txt``.
"""

from __future__ import annotations

import math
import time

import pytest

from repro import engine
from repro.algorithms.clustering import average_social_clustering_coefficient
from repro.algorithms.triangles import count_directed_triangles
from repro.experiments import format_table
from repro.metrics.degrees import (
    social_in_degrees,
    social_out_degrees,
    social_total_degrees,
)
from repro.metrics.joint_degree import (
    attribute_assortativity,
    attribute_knn,
    social_assortativity,
    social_knn,
    undirected_degree_assortativity,
)
from repro.metrics.reciprocity import global_reciprocity, reciprocal_edge_count
from repro.synthetic import BENCH_SEED, GooglePlusConfig, simulate_google_plus

#: The acceptance bar for the three headline metric groups.
REQUIRED_SPEEDUP = 3.0
MIN_EDGES = 50_000


@pytest.fixture(scope="module", autouse=True)
def _pin_frozen_tier():
    """Measure the frozen single-core kernels themselves: on a many-core
    machine the parallel tier would otherwise shadow clustering/triangles
    above its size threshold (this workload is ~50k edges)."""
    engine.configure(parallel_threshold=None)
    yield
    engine.configure()


@pytest.fixture(scope="module")
def backend_pair():
    """A ~50k-edge synthetic Google+ SAN in both backends."""
    config = GooglePlusConfig(total_users=6000, num_days=98)
    san = simulate_google_plus(config, rng=BENCH_SEED).final_san()
    assert san.number_of_social_edges() >= MIN_EDGES
    return san, san.freeze()


def _best_of(function, graph, rounds: int = 3) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        function(graph)
        times.append(time.perf_counter() - start)
    return min(times)


def _best_of_cold(function, san, rounds: int = 2) -> float:
    """Time ``function`` on a freshly frozen graph each round.

    Used for the groups whose results are memoized on the frozen SAN
    (clustering): re-freezing guarantees every timed call does real work,
    with only the undirected CSR — shared infrastructure every group relies
    on — pre-warmed, as in the steady-state measurements.
    """
    times = []
    for _ in range(rounds):
        fresh = san.freeze()
        fresh.social.undirected_csr()
        start = time.perf_counter()
        function(fresh)
        times.append(time.perf_counter() - start)
    return min(times)


METRIC_GROUPS = {
    "degrees": lambda g: (
        social_out_degrees(g),
        social_in_degrees(g),
        social_total_degrees(g),
    ),
    "reciprocity": lambda g: (global_reciprocity(g), reciprocal_edge_count(g)),
    "joint_degree": lambda g: (
        social_knn(g),
        social_assortativity(g),
        undirected_degree_assortativity(g),
        attribute_knn(g),
        attribute_assortativity(g),
    ),
    "clustering": lambda g: average_social_clustering_coefficient(g),
    "triangles": lambda g: count_directed_triangles(g),
}

#: Groups the acceptance criterion names explicitly; the rest are reported.
HEADLINE_GROUPS = ("degrees", "reciprocity", "joint_degree")


def test_frozen_backend_speedup(backend_pair, write_result):
    san, frozen = backend_pair

    # Warm the frozen graph's lazy caches (undirected CSR, edge arrays) so the
    # table reports steady-state per-call cost; the one-time freeze cost is
    # measured separately below.
    for group in METRIC_GROUPS.values():
        group(frozen)

    rows = []
    speedups = {}
    for name, group in METRIC_GROUPS.items():
        mutable_seconds = _best_of(group, san, rounds=2)
        if name == "clustering":  # results are memoized per frozen SAN
            frozen_seconds = _best_of_cold(group, san, rounds=2)
        else:
            frozen_seconds = _best_of(group, frozen, rounds=3)
        speedups[name] = mutable_seconds / frozen_seconds
        rows.append(
            {
                "metric_group": name,
                "mutable_ms": round(mutable_seconds * 1e3, 2),
                "frozen_ms": round(frozen_seconds * 1e3, 3),
                "speedup": round(speedups[name], 1),
            }
        )

    freeze_start = time.perf_counter()
    refrozen = san.freeze()
    freeze_seconds = time.perf_counter() - freeze_start
    rows.append(
        {
            "metric_group": "freeze() construction",
            "mutable_ms": "-",
            "frozen_ms": round(freeze_seconds * 1e3, 1),
            "speedup": "-",
        }
    )

    write_result(
        "bench_frozen_backend",
        format_table(
            rows,
            title=(
                f"Frozen vs mutable backend — "
                f"{san.number_of_social_nodes()} social nodes, "
                f"{san.number_of_social_edges()} social edges"
            ),
        ),
    )

    # The backends must agree before any timing claim counts.
    assert reciprocal_edge_count(refrozen) == reciprocal_edge_count(san)
    assert social_out_degrees(refrozen) == social_out_degrees(san)
    assert math.isclose(
        social_assortativity(refrozen), social_assortativity(san), rel_tol=1e-9
    )

    for name in HEADLINE_GROUPS:
        assert speedups[name] >= REQUIRED_SPEEDUP, (
            f"{name}: expected >= {REQUIRED_SPEEDUP}x, got {speedups[name]:.1f}x"
        )


def test_frozen_backend_amortizes_quickly(backend_pair):
    """One freeze() pays for itself within a single joint-degree pass."""
    san, _ = backend_pair
    freeze_start = time.perf_counter()
    frozen = san.freeze()
    freeze_seconds = time.perf_counter() - freeze_start

    mutable_seconds = _best_of(METRIC_GROUPS["joint_degree"], san, rounds=1)
    frozen_seconds = _best_of(METRIC_GROUPS["joint_degree"], frozen, rounds=1)
    assert freeze_seconds + frozen_seconds < mutable_seconds
