"""Theorems 1-2: closed-form predictions vs simulated distributions.

Theorem 1: the model's social out-degree is lognormal with parameters
determined by the truncated-normal lifetime and the mean sleep time.
Theorem 2: the social degree of attribute nodes is a power law with exponent
(2 - p) / (1 - p).
"""

from repro.experiments import format_table
from repro.fitting import fit_lognormal, fit_power_law
from repro.metrics import social_degrees_of_attribute_nodes, social_out_degrees
from repro.models import (
    SANModelParameters,
    generate_san,
    predicted_attribute_social_degree_exponent,
    predicted_outdegree_lognormal,
)


def test_theorem1_outdegree_lognormal(benchmark, write_result):
    params = SANModelParameters(steps=2500)

    def run():
        run_result = generate_san(params, rng=1, record_history=False)
        degrees = [d for d in social_out_degrees(run_result.san) if d >= 1]
        return fit_lognormal(degrees)

    fit = benchmark.pedantic(run, rounds=1, iterations=1)
    prediction = predicted_outdegree_lognormal(params)
    rows = [
        {"quantity": "mu", "predicted": prediction.mu, "measured": fit.distribution.mu},
        {"quantity": "sigma", "predicted": prediction.sigma, "measured": fit.distribution.sigma},
    ]
    write_result("theorem1_outdegree", format_table(rows, title="Theorem 1 — out-degree lognormal"))

    assert abs(fit.distribution.mu - prediction.mu) < 0.5
    assert abs(fit.distribution.sigma - prediction.sigma) < 0.5


def test_theorem2_attribute_degree_exponent(benchmark, write_result):
    rows = []

    def run():
        measured = {}
        for p in (0.1, 0.25, 0.5):
            params = SANModelParameters(steps=2000, new_attribute_probability=p)
            run_result = generate_san(params, rng=2, record_history=False)
            degrees = [d for d in social_degrees_of_attribute_nodes(run_result.san) if d >= 1]
            measured[p] = fit_power_law(degrees).distribution.alpha
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    for p, alpha in measured.items():
        predicted = predicted_attribute_social_degree_exponent(
            SANModelParameters(steps=10, new_attribute_probability=p)
        )
        rows.append({"p": p, "predicted_alpha": predicted, "measured_alpha": alpha})
    write_result("theorem2_attribute_exponent", format_table(rows, title="Theorem 2 — attribute degree exponent"))

    # The measured exponent tracks the predicted (2 - p) / (1 - p): it must
    # increase with p and stay within a tolerance of the prediction.
    alphas = [measured[p] for p in (0.1, 0.25, 0.5)]
    assert alphas[0] < alphas[2]
    for p in (0.1, 0.25, 0.5):
        predicted = predicted_attribute_social_degree_exponent(
            SANModelParameters(steps=10, new_attribute_probability=p)
        )
        assert abs(measured[p] - predicted) < 0.8
