"""Figures 13-14: influence of attributes on the social structure.

Paper results: one-directional links whose endpoints share an attribute are
roughly twice as likely to become reciprocal; Employer forms much stronger
communities than City; users with Employer=Google / Major=Computer Science
have higher out-degrees than holders of other popular values.
"""

from repro.experiments import figure13_influence, figure14_degree_by_attribute_value, format_table
from repro.synthetic import TECH_VALUES


def test_fig13_reciprocity_and_clustering_by_type(
    benchmark, halfway_san, reference_san, write_result
):
    result = benchmark.pedantic(
        figure13_influence, args=(halfway_san, reference_san), rounds=1, iterations=1
    )
    rows = [
        {"bucket": bucket, "reciprocation_rate": rate}
        for bucket, rate in result["reciprocity_by_bucket"].items()
        if rate is not None
    ]
    rows.append({"bucket": "boost (shared vs none)", "reciprocation_rate": result["attribute_boost"]})
    clustering_rows = [
        {"attribute_type": attr_type, "avg_attribute_clustering": value}
        for attr_type, value in result["clustering_by_type"].items()
    ]
    write_result(
        "fig13_influence",
        format_table(rows, title="Figure 13a — reciprocation by shared attributes")
        + "\n\n"
        + format_table(clustering_rows, title="Figure 13b — clustering by attribute type"),
    )

    # Sharing attributes boosts reciprocation (paper: ~2x).
    assert result["attribute_boost"] is not None
    assert result["attribute_boost"] > 1.2

    clustering = result["clustering_by_type"]
    # Employer forms communities at least as strong as City (the paper's
    # strongest vs weakest type).  A small tolerance absorbs the run-to-run
    # noise of the per-type averages at this workload's scale (a few dozen
    # attribute nodes per type vs millions in the Google+ crawl).
    assert clustering["employer"] > 0.03
    assert clustering["employer"] >= clustering["city"] - 0.02
    # The focally-weighted professional types (employer, school) jointly beat City.
    professional = (clustering["employer"] + clustering["school"]) / 2
    assert professional >= clustering["city"] - 0.01


def test_fig14_degree_by_attribute_value(benchmark, reference_san, write_result):
    result = benchmark.pedantic(
        figure14_degree_by_attribute_value, args=(reference_san,), kwargs={"top_values": 4},
        rounds=1, iterations=1,
    )
    rows = []
    for attr_type, entries in result.items():
        for entry in entries:
            rows.append({"type": attr_type, **entry})
    write_result("fig14_degree_by_attribute", format_table(rows, title="Figure 14 — out-degree by attribute value"))

    assert result["employer"], "top employers must exist"
    assert result["major"], "top majors must exist"

    # Tech-sector values have a degree advantage over non-tech values on average.
    def mean_of(entries, predicate):
        selected = [entry["mean"] for entry in entries if predicate(entry["value"])]
        return sum(selected) / len(selected) if selected else None

    tech_mean = mean_of(result["employer"], lambda value: value in TECH_VALUES)
    non_tech_mean = mean_of(result["employer"], lambda value: value not in TECH_VALUES)
    if tech_mean is not None and non_tech_mean is not None:
        assert tech_mean > non_tech_mean * 0.8
