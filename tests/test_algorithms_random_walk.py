"""Tests for random walks and the degree-capped adjacency."""

from repro.algorithms import (
    capped_undirected_adjacency,
    random_walk,
    random_walk_on_san,
    stationary_degree_distribution,
)
from repro.graph import san_from_edge_lists


def test_capped_adjacency_respects_cap(clique_san):
    adjacency = capped_undirected_adjacency(clique_san.social, degree_cap=3, rng=1)
    assert all(len(neighbors) <= 3 for neighbors in adjacency.values())
    uncapped = capped_undirected_adjacency(clique_san.social, degree_cap=None)
    assert all(len(neighbors) == 5 for neighbors in uncapped.values())


def test_random_walk_length_and_adjacency(clique_san):
    adjacency = capped_undirected_adjacency(clique_san.social)
    path = random_walk(adjacency, 0, 10, rng=2)
    assert len(path) == 11
    for previous, current in zip(path, path[1:]):
        assert current in adjacency[previous]


def test_random_walk_stops_at_dead_end():
    san = san_from_edge_lists([(1, 2)])
    adjacency = {1: [2], 2: []}
    path = random_walk(adjacency, 1, 5, rng=3)
    assert path == [1, 2]


def test_random_walk_on_san(figure1_san):
    path = random_walk_on_san(figure1_san, 1, 4, rng=4)
    assert path[0] == 1
    assert len(path) >= 2


def test_stationary_distribution_proportional_to_degree():
    adjacency = {1: [2, 3], 2: [1], 3: [1]}
    stationary = stationary_degree_distribution(adjacency)
    assert stationary[1] == 0.5
    assert stationary[2] == 0.25
    assert sum(stationary.values()) == 1.0


def test_stationary_distribution_empty_graph():
    assert stationary_degree_distribution({}) == {}
    uniform = stationary_degree_distribution({1: [], 2: []})
    assert uniform[1] == 0.5
