"""Tests for the snapshot-series evolution drivers and phase helpers."""

import pytest

from repro.metrics import (
    PhaseBoundaries,
    assortativity_series,
    attribute_density_series,
    clustering_series,
    diameter_series,
    growth_series,
    metric_series,
    phase_averages,
    phase_trends,
    reciprocity_series,
    social_density_series,
    subsample_snapshots,
)
from repro.metrics.density import social_density


def test_phase_boundaries():
    phases = PhaseBoundaries(phase_one_end=20, phase_two_end=75)
    assert phases.phase_of(1) == 1
    assert phases.phase_of(20) == 1
    assert phases.phase_of(21) == 2
    assert phases.phase_of(75) == 2
    assert phases.phase_of(76) == 3
    assert phases.phase_of(98) == 3


def test_growth_series_monotone(tiny_snapshots):
    snapshots = list(tiny_snapshots)
    series = growth_series(snapshots)
    for key in ("social_nodes", "attribute_nodes", "social_links", "attribute_links"):
        values = [value for _, value in series[key]]
        assert values == sorted(values), f"{key} should never shrink"
        assert values[-1] > 0


def test_metric_series_general(tiny_snapshots):
    snapshots = list(tiny_snapshots)
    series = metric_series(snapshots, social_density)
    assert len(series) == len(snapshots)
    assert series == social_density_series(snapshots)


def test_reciprocity_series_in_unit_interval(tiny_snapshots):
    for _, value in reciprocity_series(list(tiny_snapshots)):
        assert 0.0 <= value <= 1.0


def test_attribute_density_series_positive(tiny_snapshots):
    values = [value for _, value in attribute_density_series(list(tiny_snapshots))]
    assert all(value >= 0 for value in values)
    # Once attributes exist (later snapshots) the density is strictly positive.
    assert values[-1] > 0


def test_clustering_series_social_and_attribute(tiny_snapshots):
    snapshots = list(tiny_snapshots)[-2:]
    social = clustering_series(snapshots, kind="social", num_samples=1500, rng=1)
    attribute = clustering_series(snapshots, kind="attribute", num_samples=1500, rng=1)
    assert len(social) == len(attribute) == 2
    assert all(0.0 <= value <= 1.0 for _, value in social + attribute)
    with pytest.raises(ValueError):
        clustering_series(snapshots, kind="nope")


def test_diameter_series_keys(tiny_snapshots):
    snapshots = list(tiny_snapshots)[-2:]
    series = diameter_series(snapshots, precision=5, num_attribute_pairs=20, rng=2)
    assert set(series) == {"social", "attribute"}
    assert all(value >= 0 for _, value in series["social"])


def test_assortativity_series(tiny_snapshots):
    snapshots = list(tiny_snapshots)[-2:]
    social = assortativity_series(snapshots, kind="social")
    attribute = assortativity_series(snapshots, kind="attribute")
    assert all(-1.0 <= value <= 1.0 for _, value in social + attribute)
    with pytest.raises(ValueError):
        assortativity_series(snapshots, kind="nope")


def test_phase_averages_and_trends():
    series = [(1, 1.0), (10, 2.0), (30, 4.0), (40, 6.0), (80, 3.0), (90, 1.0)]
    phases = PhaseBoundaries(phase_one_end=20, phase_two_end=75)
    averages = phase_averages(series, phases)
    assert averages[1] == pytest.approx(1.5)
    assert averages[2] == pytest.approx(5.0)
    assert averages[3] == pytest.approx(2.0)
    trends = phase_trends(series, phases)
    assert trends[1] == pytest.approx(1.0)
    assert trends[2] == pytest.approx(2.0)
    assert trends[3] == pytest.approx(-2.0)


def test_phase_averages_empty_phase():
    series = [(1, 1.0)]
    averages = phase_averages(series)
    assert averages[1] == 1.0
    assert averages[2] != averages[2]  # NaN for empty phases


def test_subsample_snapshots():
    snapshots = [(day, None) for day in range(1, 21)]
    thinned = subsample_snapshots(snapshots, 5)
    assert len(thinned) == 5
    assert thinned[0][0] == 1 and thinned[-1][0] == 20
    assert subsample_snapshots(snapshots, 50) == snapshots
    assert subsample_snapshots(snapshots, 1) == [snapshots[-1]]
    with pytest.raises(ValueError):
        subsample_snapshots(snapshots, 0)
