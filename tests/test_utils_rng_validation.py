"""Unit tests for RNG coercion and argument validation."""

import random

import pytest

from repro.utils import (
    ensure_rng,
    require_non_negative,
    require_positive,
    require_probability,
    spawn_rngs,
)


def test_ensure_rng_from_int_is_deterministic():
    first = ensure_rng(42)
    second = ensure_rng(42)
    assert [first.random() for _ in range(3)] == [second.random() for _ in range(3)]


def test_ensure_rng_passthrough():
    generator = random.Random(7)
    assert ensure_rng(generator) is generator


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), random.Random)


def test_ensure_rng_rejects_bad_type():
    with pytest.raises(TypeError):
        ensure_rng("seed")


def test_spawn_rngs_independent_and_deterministic():
    children_a = spawn_rngs(5, 3)
    children_b = spawn_rngs(5, 3)
    assert len(children_a) == 3
    for a, b in zip(children_a, children_b):
        assert a.random() == b.random()
    # Distinct children produce different streams.
    fresh = spawn_rngs(5, 2)
    assert fresh[0].random() != fresh[1].random()


def test_require_positive():
    assert require_positive(3, "x") == 3
    with pytest.raises(ValueError):
        require_positive(0, "x")
    with pytest.raises(ValueError):
        require_positive(-1, "x")


def test_require_non_negative():
    assert require_non_negative(0, "x") == 0
    with pytest.raises(ValueError):
        require_non_negative(-0.5, "x")


def test_require_probability():
    assert require_probability(0.5, "p") == 0.5
    assert require_probability(0.0, "p") == 0.0
    assert require_probability(1.0, "p") == 1.0
    with pytest.raises(ValueError):
        require_probability(1.5, "p")
    with pytest.raises(ValueError):
        require_probability(-0.1, "p")
