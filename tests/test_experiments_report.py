"""Tests for the plain-text experiment reporting helpers."""

from repro.experiments import format_distribution, format_series, format_table, series_trend


def test_format_series_contains_rows_and_labels():
    text = format_series([(1, 0.5), (2, 0.25)], x_label="day", y_label="value", title="demo")
    assert "demo" in text
    assert "day" in text and "value" in text
    assert "0.5" in text and "0.25" in text


def test_format_table_alignment_and_missing_cells():
    rows = [{"name": "a", "value": 1.23456}, {"name": "bb"}]
    text = format_table(rows, columns=["name", "value"], title="tbl")
    assert "tbl" in text
    assert "1.235" in text
    lines = text.splitlines()
    assert len(lines) == 5  # title, header, rule, two rows


def test_format_table_empty():
    assert format_table([], title="nothing") == "nothing"
    assert format_table([]) == "(empty table)"


def test_format_distribution_delegates_to_series():
    text = format_distribution([(1, 0.9)], title="dist")
    assert "dist" in text and "degree" in text


def test_series_trend():
    assert series_trend([(1, 1.0), (2, 2.0)]) == "increasing"
    assert series_trend([(1, 2.0), (2, 1.0)]) == "decreasing"
    assert series_trend([(1, 1.0), (2, 1.01)]) == "flat"
    assert series_trend([(1, 1.0)]) == "flat"
