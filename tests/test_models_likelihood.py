"""Tests for the attachment-model likelihood evaluation (Figure 15 machinery).

The semantics tests run against both registered likelihood engines
(``"loop"`` and ``"vectorized"``) — the contract is that the backends are
interchangeable: same scored-link set, same per-model log-likelihoods.
"""

import math

import pytest

from repro.graph import SAN
from repro.models import (
    ArrivalHistory,
    AttachmentModelSpec,
    AttachmentParameters,
    evaluate_attachment_models,
    figure15_sweep,
)
from repro.models.attachment import (
    LinearAttributePreferentialAttachment,
    PowerAttributePreferentialAttachment,
    PreferentialAttachment,
)

ENGINES = ("loop", "vectorized")


def _toy_history():
    """Small hand-built history: a hub accumulating links plus attribute ties."""
    initial = SAN()
    for node in range(4):
        initial.add_social_node(node)
    initial.add_social_edge(1, 0)
    initial.add_social_edge(2, 0)
    initial.add_attribute_edge(2, "g", attr_type="employer")
    initial.add_attribute_edge(3, "g", attr_type="employer")

    history = ArrivalHistory(initial=initial)
    history.record_node(4)
    history.record_attribute_link(4, "g", attr_type="employer")
    history.record_social_link(4, 0)   # preferential: the hub
    history.record_social_link(4, 2)   # attribute-driven: shares "g"
    history.record_node(5)
    history.record_social_link(5, 0)
    return history


def _mid_arrival_history():
    """A history whose denominators depend on mid-history node arrivals.

    Node 2 joins *between* two scored links and node 7 becomes social only
    through being a link target — both must enter the normalising sum for
    later links but not earlier ones.
    """
    initial = SAN()
    initial.add_social_node(0)
    initial.add_social_node(1)
    initial.add_social_edge(1, 0)
    initial.add_attribute_edge(0, "g", attr_type="employer")
    history = ArrivalHistory(initial=initial)
    history.record_social_link(0, 1)
    history.record_node(2)
    history.record_attribute_link(2, "g", attr_type="employer")
    history.record_social_link(2, 0)
    history.record_social_link(1, 7)   # 7 undeclared: not scoreable, becomes social
    history.record_social_link(0, 7)   # now scoreable; denominator includes 2 and 7
    return history


def test_spec_names_and_attribute_factor():
    pa = AttachmentModelSpec(kind="pa", alpha=1.0)
    assert pa.name == "pa(alpha=1, beta=0)"
    lapa = AttachmentModelSpec(kind="lapa", alpha=1.0, beta=100.0)
    assert "lapa" in lapa.name
    assert lapa.attribute_factor(2.0) == pytest.approx(201.0)
    papa = AttachmentModelSpec(kind="papa", alpha=1.0, beta=2.0)
    assert papa.attribute_factor(3.0) == pytest.approx(10.0)
    assert papa.attribute_factor(0.0) == pytest.approx(1.0)
    flat_papa = AttachmentModelSpec(kind="papa", alpha=1.0, beta=0.0)
    assert flat_papa.attribute_factor(0.0) == pytest.approx(2.0)


@pytest.mark.parametrize("engine", ENGINES)
def test_evaluate_requires_social_links(engine):
    history = ArrivalHistory()
    history.record_node(1)
    with pytest.raises(ValueError):
        evaluate_attachment_models(
            history, [AttachmentModelSpec(kind="pa", alpha=1.0)], engine=engine
        )


@pytest.mark.parametrize("engine", ENGINES)
def test_loglikelihoods_are_negative_and_finite(engine):
    history = _toy_history()
    specs = [
        AttachmentModelSpec(kind="pa", alpha=1.0, label="pa"),
        AttachmentModelSpec(kind="pa", alpha=0.0, label="uniform"),
        AttachmentModelSpec(kind="lapa", alpha=1.0, beta=100.0, label="lapa"),
    ]
    result = evaluate_attachment_models(history, specs, max_links=None, engine=engine)
    assert result.num_links_scored == 3
    for value in result.log_likelihoods.values():
        assert value < 0
        assert math.isfinite(value)


@pytest.mark.parametrize("engine", ENGINES)
def test_papa_beta_zero_is_exactly_pa(engine):
    """PAPA's beta = 0 factor is the constant 2, which cancels in the ratio."""
    history = _toy_history()
    for alpha in (0.0, 0.5, 1.0, 2.0):
        specs = [
            AttachmentModelSpec(kind="pa", alpha=alpha, label="pa"),
            AttachmentModelSpec(kind="papa", alpha=alpha, beta=0.0, label="papa0"),
        ]
        result = evaluate_attachment_models(
            history, specs, max_links=None, engine=engine
        )
        assert result.log_likelihoods["papa0"] == pytest.approx(
            result.log_likelihoods["pa"], rel=1e-12, abs=1e-12
        )


@pytest.mark.parametrize("engine", ENGINES)
def test_max_links_none_scores_every_eligible_link(engine):
    """Duplicates, self-loops and not-yet-social targets are never scored;
    everything else is when ``max_links=None``."""
    initial = SAN()
    for node in range(3):
        initial.add_social_node(node)
    initial.add_social_edge(1, 0)
    history = ArrivalHistory(initial=initial)
    history.record_social_link(1, 0)   # duplicate of an initial edge
    history.record_social_link(0, 0)   # self-loop
    history.record_social_link(0, 9)   # target not social yet
    history.record_social_link(2, 9)   # 9 became social above -> scored
    history.record_social_link(0, 2)   # scored
    history.record_social_link(0, 2)   # duplicate of an event edge
    result = evaluate_attachment_models(
        history,
        [AttachmentModelSpec(kind="pa", alpha=1.0)],
        max_links=None,
        engine=engine,
    )
    assert result.num_links_scored == 2


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "spec, model_factory",
    [
        (
            AttachmentModelSpec(kind="lapa", alpha=1.0, beta=50.0, label="m"),
            lambda: LinearAttributePreferentialAttachment(
                AttachmentParameters(alpha=1.0, beta=50.0, smoothing=1.0)
            ),
        ),
        (
            AttachmentModelSpec(kind="papa", alpha=0.5, beta=2.0, label="m"),
            lambda: PowerAttributePreferentialAttachment(
                AttachmentParameters(alpha=0.5, beta=2.0, smoothing=1.0)
            ),
        ),
        (
            AttachmentModelSpec(kind="pa", alpha=2.0, label="m"),
            lambda: PreferentialAttachment(alpha=2.0, smoothing=1.0),
        ),
    ],
)
def test_likelihood_matches_bruteforce(engine, spec, model_factory):
    """Both engines must agree with a naive O(V)-per-link computation,
    including denominators affected by mid-history node arrivals."""
    for history in (_toy_history(), _mid_arrival_history()):
        result = evaluate_attachment_models(
            history, [spec], smoothing=1.0, max_links=None, engine=engine
        )

        model = model_factory()
        expected = 0.0
        for state, event in history.replay():
            if event.kind != "social":
                continue
            source, target = event.first, event.second
            if (
                not state.is_social_node(target)
                or state.has_social_edge(source, target)
                or source == target
            ):
                continue
            weights = {
                node: model.weight(state, source, node)
                for node in state.social_nodes()
                if node != source
            }
            expected += math.log(weights[target] / sum(weights.values()))
        assert result.log_likelihoods["m"] == pytest.approx(expected, rel=1e-9)


@pytest.mark.parametrize("engine", ENGINES)
def test_pa_beats_uniform_on_preferential_history(engine):
    """A history dominated by hub attachment should favour PA over uniform."""
    initial = SAN()
    for node in range(3):
        initial.add_social_node(node)
    initial.add_social_edge(1, 0)
    initial.add_social_edge(2, 0)
    history = ArrivalHistory(initial=initial)
    for new_node in range(3, 40):
        history.record_node(new_node)
        history.record_social_link(new_node, 0)
    specs = [
        AttachmentModelSpec(kind="pa", alpha=1.0, label="pa"),
        AttachmentModelSpec(kind="pa", alpha=0.0, label="uniform"),
    ]
    result = evaluate_attachment_models(history, specs, max_links=None, engine=engine)
    assert result.log_likelihoods["pa"] > result.log_likelihoods["uniform"]
    improvements = result.relative_improvement_over("uniform")
    assert improvements["pa"] > 0


def test_relative_improvement_over_baseline_zero_raises():
    from repro.models.likelihood import LikelihoodResult

    result = LikelihoodResult(log_likelihoods={"a": 0.0, "b": -1.0}, num_links_scored=1)
    with pytest.raises(ValueError):
        result.relative_improvement_over("a")


@pytest.mark.parametrize("engine", ENGINES)
def test_figure15_sweep_structure(engine):
    history = _toy_history()
    sweep = figure15_sweep(
        history,
        alphas=(0.0, 1.0),
        papa_betas=(0.0, 2.0),
        lapa_betas=(0.0, 100.0),
        max_links=None,
        rng=1,
        engine=engine,
    )
    assert set(sweep) == {"papa", "lapa", "pa_over_uniform", "num_links_scored"}
    assert (1.0, 100.0) in sweep["lapa"]
    assert (0.0, 2.0) in sweep["papa"]
    assert sweep["num_links_scored"] == 3
    # The PA reference improvement over itself is zero by definition.
    assert sweep["lapa"][(1.0, 0.0)] == pytest.approx(0.0, abs=1e-9)
