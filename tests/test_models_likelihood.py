"""Tests for the attachment-model likelihood evaluation (Figure 15 machinery)."""

import math
import random

import pytest

from repro.graph import SAN
from repro.models import (
    ArrivalHistory,
    AttachmentModelSpec,
    AttachmentParameters,
    evaluate_attachment_models,
    figure15_sweep,
)
from repro.models.attachment import LinearAttributePreferentialAttachment


def _toy_history():
    """Small hand-built history: a hub accumulating links plus attribute ties."""
    initial = SAN()
    for node in range(4):
        initial.add_social_node(node)
    initial.add_social_edge(1, 0)
    initial.add_social_edge(2, 0)
    initial.add_attribute_edge(2, "g", attr_type="employer")
    initial.add_attribute_edge(3, "g", attr_type="employer")

    history = ArrivalHistory(initial=initial)
    history.record_node(4)
    history.record_attribute_link(4, "g", attr_type="employer")
    history.record_social_link(4, 0)   # preferential: the hub
    history.record_social_link(4, 2)   # attribute-driven: shares "g"
    history.record_node(5)
    history.record_social_link(5, 0)
    return history


def test_spec_names_and_attribute_factor():
    pa = AttachmentModelSpec(kind="pa", alpha=1.0)
    assert pa.name == "pa(alpha=1, beta=0)"
    lapa = AttachmentModelSpec(kind="lapa", alpha=1.0, beta=100.0)
    assert "lapa" in lapa.name
    assert lapa.attribute_factor(2.0) == pytest.approx(201.0)
    papa = AttachmentModelSpec(kind="papa", alpha=1.0, beta=2.0)
    assert papa.attribute_factor(3.0) == pytest.approx(10.0)
    assert papa.attribute_factor(0.0) == pytest.approx(1.0)
    flat_papa = AttachmentModelSpec(kind="papa", alpha=1.0, beta=0.0)
    assert flat_papa.attribute_factor(0.0) == pytest.approx(2.0)


def test_evaluate_requires_social_links():
    history = ArrivalHistory()
    history.record_node(1)
    with pytest.raises(ValueError):
        evaluate_attachment_models(history, [AttachmentModelSpec(kind="pa", alpha=1.0)])


def test_loglikelihoods_are_negative_and_finite():
    history = _toy_history()
    specs = [
        AttachmentModelSpec(kind="pa", alpha=1.0, label="pa"),
        AttachmentModelSpec(kind="pa", alpha=0.0, label="uniform"),
        AttachmentModelSpec(kind="lapa", alpha=1.0, beta=100.0, label="lapa"),
    ]
    result = evaluate_attachment_models(history, specs, max_links=None)
    assert result.num_links_scored == 3
    for value in result.log_likelihoods.values():
        assert value < 0
        assert math.isfinite(value)


def test_likelihood_matches_bruteforce_for_lapa():
    """The incremental evaluator must agree with a naive O(V) computation."""
    history = _toy_history()
    spec = AttachmentModelSpec(kind="lapa", alpha=1.0, beta=50.0, label="lapa")
    result = evaluate_attachment_models(history, [spec], smoothing=1.0, max_links=None)

    # Brute force: replay and sum log(w(u,v) / sum_x w(u,x)) over social events.
    params = AttachmentParameters(alpha=1.0, beta=50.0, smoothing=1.0)
    model = LinearAttributePreferentialAttachment(params)
    expected = 0.0
    for state, event in history.replay():
        if event.kind != "social":
            continue
        source, target = event.first, event.second
        if state.has_social_edge(source, target) or source == target:
            continue
        weights = {
            node: model.weight(state, source, node)
            for node in state.social_nodes()
            if node != source
        }
        expected += math.log(weights[target] / sum(weights.values()))
    assert result.log_likelihoods["lapa"] == pytest.approx(expected, rel=1e-9)


def test_pa_beats_uniform_on_preferential_history():
    """A history dominated by hub attachment should favour PA over uniform."""
    initial = SAN()
    for node in range(3):
        initial.add_social_node(node)
    initial.add_social_edge(1, 0)
    initial.add_social_edge(2, 0)
    history = ArrivalHistory(initial=initial)
    for new_node in range(3, 40):
        history.record_node(new_node)
        history.record_social_link(new_node, 0)
    specs = [
        AttachmentModelSpec(kind="pa", alpha=1.0, label="pa"),
        AttachmentModelSpec(kind="pa", alpha=0.0, label="uniform"),
    ]
    result = evaluate_attachment_models(history, specs, max_links=None)
    assert result.log_likelihoods["pa"] > result.log_likelihoods["uniform"]
    improvements = result.relative_improvement_over("uniform")
    assert improvements["pa"] > 0


def test_relative_improvement_over_baseline_zero_raises():
    from repro.models.likelihood import LikelihoodResult

    result = LikelihoodResult(log_likelihoods={"a": 0.0, "b": -1.0}, num_links_scored=1)
    with pytest.raises(ValueError):
        result.relative_improvement_over("a")


def test_figure15_sweep_structure():
    history = _toy_history()
    sweep = figure15_sweep(
        history,
        alphas=(0.0, 1.0),
        papa_betas=(0.0, 2.0),
        lapa_betas=(0.0, 100.0),
        max_links=None,
        rng=1,
    )
    assert set(sweep) == {"papa", "lapa", "pa_over_uniform", "num_links_scored"}
    assert (1.0, 100.0) in sweep["lapa"]
    assert (0.0, 2.0) in sweep["papa"]
    assert sweep["num_links_scored"] == 3
    # The PA reference improvement over itself is zero by definition.
    assert sweep["lapa"][(1.0, 0.0)] == pytest.approx(0.0, abs=1e-9)
