"""Tests for the Algorithm 1 generative model."""

import pytest

from repro.fitting import best_fit_name, fit_lognormal, fit_power_law
from repro.metrics import (
    attribute_degrees_of_social_nodes,
    global_reciprocity,
    social_degrees_of_attribute_nodes,
    social_out_degrees,
)
from repro.models import (
    SANModelParameters,
    generate_san,
    predicted_attribute_social_degree_exponent,
    predicted_outdegree_lognormal,
)


def test_run_produces_expected_node_count(model_run):
    params = model_run.parameters
    expected_nodes = params.seed_social_nodes + params.steps * params.arrivals_per_step
    assert model_run.san.number_of_social_nodes() == expected_nodes


def test_run_records_history_and_snapshots(model_run):
    assert model_run.history.num_node_joins() == model_run.parameters.steps
    assert model_run.history.num_social_links() > 0
    # Replaying the history reproduces the final SAN exactly.
    replayed = model_run.history.final_san()
    assert replayed.number_of_social_edges() == model_run.san.number_of_social_edges()
    assert replayed.number_of_attribute_edges() == model_run.san.number_of_attribute_edges()
    days = [day for day, _ in model_run.snapshots]
    assert days[-1] == model_run.parameters.steps
    sizes = [san.number_of_social_nodes() for _, san in model_run.snapshots]
    assert sizes == sorted(sizes)


def test_no_self_loops_or_duplicate_edges(model_run):
    san = model_run.san
    for source, target in san.social_edges():
        assert source != target
    # DiGraph enforces uniqueness structurally; verify count consistency.
    assert san.number_of_social_edges() == len(set(san.social_edges()))


def test_reciprocity_in_expected_range(model_run):
    reciprocity = global_reciprocity(model_run.san)
    target = model_run.parameters.reciprocation_probability
    assert abs(reciprocity - target) < 0.25


def test_outdegree_close_to_theorem_one_prediction(model_run):
    """The realised out-degree distribution should match the Theorem 1 lognormal."""
    degrees = [d for d in social_out_degrees(model_run.san) if d >= 1]
    fit = fit_lognormal(degrees)
    prediction = predicted_outdegree_lognormal(model_run.parameters)
    assert fit.distribution.mu == pytest.approx(prediction.mu, abs=0.5)
    assert fit.distribution.sigma == pytest.approx(prediction.sigma, abs=0.5)


def test_outdegree_best_fit_is_lognormal(model_run):
    degrees = [d for d in social_out_degrees(model_run.san) if d >= 1]
    assert best_fit_name(degrees) in ("lognormal", "power_law_with_cutoff")
    # The lognormal must at least beat the pure power law.
    from repro.fitting import lognormal_vs_power_law

    assert lognormal_vs_power_law(degrees).favours_first


def test_attribute_degree_lognormal_parameters(model_run):
    degrees = [d for d in attribute_degrees_of_social_nodes(model_run.san) if d >= 1]
    fit = fit_lognormal(degrees)
    assert fit.distribution.mu == pytest.approx(model_run.parameters.attribute_mu, abs=0.4)


def test_attribute_social_degree_power_law_exponent(model_run):
    degrees = [d for d in social_degrees_of_attribute_nodes(model_run.san) if d >= 1]
    fit = fit_power_law(degrees)
    predicted = predicted_attribute_social_degree_exponent(model_run.parameters)
    assert fit.distribution.alpha == pytest.approx(predicted, abs=0.6)


def test_ablation_flags_change_structure():
    base = SANModelParameters(steps=250)
    without_lapa = SANModelParameters(steps=250, use_lapa=False)
    without_focal = SANModelParameters(steps=250, use_focal_closure=False)
    run_base = generate_san(base, rng=5, record_history=False)
    run_no_lapa = generate_san(without_lapa, rng=5, record_history=False)
    run_no_focal = generate_san(without_focal, rng=5, record_history=False)
    for run in (run_base, run_no_lapa, run_no_focal):
        assert run.san.number_of_social_nodes() == 255
        assert run.san.number_of_social_edges() > 255


def test_snapshot_every_none_gives_no_snapshots():
    run = generate_san(SANModelParameters(steps=60), rng=2, record_history=False)
    assert run.snapshots == []
    assert run.history.events == []


def test_deterministic_given_seed():
    params = SANModelParameters(steps=80)
    first = generate_san(params, rng=123, record_history=False)
    second = generate_san(params, rng=123, record_history=False)
    assert set(first.san.social_edges()) == set(second.san.social_edges())
    assert set(first.san.attribute_edges()) == set(second.san.attribute_edges())


def test_serialized_determinism_given_seed(tmp_path):
    """Same seed + parameters produce byte-identical serialized SANs."""
    from repro.graph import save_san_tsv

    params = SANModelParameters(steps=100)
    for index in (1, 2):
        run = generate_san(params, rng=77, record_history=False)
        save_san_tsv(
            run.san,
            tmp_path / f"run{index}.social.tsv",
            tmp_path / f"run{index}.attrs.tsv",
        )
    for suffix in ("social.tsv", "attrs.tsv"):
        first = (tmp_path / f"run1.{suffix}").read_bytes()
        second = (tmp_path / f"run2.{suffix}").read_bytes()
        assert first == second


def test_parameter_validation():
    with pytest.raises(ValueError):
        SANModelParameters(steps=0)
    with pytest.raises(ValueError):
        SANModelParameters(steps=10, new_attribute_probability=1.5)
    with pytest.raises(ValueError):
        SANModelParameters(steps=10, focal_weight=-0.1)
