"""Tests for connected-component algorithms."""

from repro.algorithms import (
    largest_weakly_connected_component,
    restrict_san_to_largest_wcc,
    strongly_connected_components,
    wcc_fraction,
    weakly_connected_components,
)
from repro.graph import DiGraph, san_from_edge_lists


def test_wcc_single_component(ring_san):
    components = weakly_connected_components(ring_san.social)
    assert len(components) == 1
    assert len(components[0]) == 10


def test_wcc_multiple_components():
    graph = DiGraph([(1, 2), (3, 4), (4, 5)])
    components = weakly_connected_components(graph)
    assert len(components) == 2
    assert len(components[0]) == 3  # largest first
    assert largest_weakly_connected_component(graph) == {3, 4, 5}


def test_wcc_fraction():
    graph = DiGraph([(1, 2), (3, 4), (4, 5)])
    assert wcc_fraction(graph) == 3 / 5
    assert wcc_fraction(DiGraph()) == 0.0


def test_wcc_isolated_node():
    graph = DiGraph()
    graph.add_node("solo")
    assert weakly_connected_components(graph) == [{"solo"}]


def test_restrict_san_to_largest_wcc():
    san = san_from_edge_lists(
        [(1, 2), (2, 3), (10, 11)],
        [(1, "city", "A"), (10, "city", "B")],
    )
    restricted = restrict_san_to_largest_wcc(san)
    assert restricted.number_of_social_nodes() == 3
    assert restricted.is_attribute_node("city:A")
    assert not restricted.is_attribute_node("city:B")


def test_scc_on_cycle_and_chain():
    graph = DiGraph([(1, 2), (2, 3), (3, 1), (3, 4), (4, 5)])
    components = strongly_connected_components(graph)
    sizes = sorted(len(component) for component in components)
    assert sizes == [1, 1, 3]
    assert {1, 2, 3} in components


def test_scc_reciprocal_pair():
    graph = DiGraph([(1, 2), (2, 1), (2, 3)])
    components = strongly_connected_components(graph)
    assert {1, 2} in components
    assert {3} in components


def test_scc_counts_every_node_once():
    graph = DiGraph([(i, i + 1) for i in range(20)])
    components = strongly_connected_components(graph)
    total = sum(len(component) for component in components)
    assert total == graph.number_of_nodes()
