"""Tests for arrival histories (recording, replay, snapshot diffing)."""

import pytest

from repro.graph import SAN, san_from_edge_lists
from repro.models import ArrivalEvent, ArrivalHistory, apply_event


def test_event_validation():
    with pytest.raises(ValueError):
        ArrivalEvent("bogus", 1)
    with pytest.raises(ValueError):
        ArrivalEvent("social", 1)  # missing second endpoint
    event = ArrivalEvent("node", 1)
    assert event.second is None


def test_record_and_counts():
    history = ArrivalHistory()
    history.record_node(1)
    history.record_attribute_link(1, "city:SF", attr_type="city", value="SF")
    history.record_social_link(1, 2)
    history.record_social_link(2, 1)
    assert history.num_node_joins() == 1
    assert history.num_social_links() == 2
    assert len(history.social_link_events()) == 2


def test_replay_yields_state_before_event():
    history = ArrivalHistory()
    history.record_node(1)
    history.record_node(2)
    history.record_social_link(1, 2)
    states = []
    for state, event in history.replay():
        if event.kind == "social":
            states.append(state.number_of_social_nodes())
            assert not state.has_social_edge(1, 2)
    assert states == [2]


def test_final_san_applies_all_events():
    history = ArrivalHistory()
    history.record_node(1)
    history.record_node(2)
    history.record_attribute_link(2, "employer:G", attr_type="employer")
    history.record_social_link(1, 2)
    final = history.final_san()
    assert final.has_social_edge(1, 2)
    assert final.has_attribute_edge(2, "employer:G")
    # The original initial SAN is untouched.
    assert history.initial.number_of_social_nodes() == 0


def test_from_snapshots_diff():
    earlier = san_from_edge_lists([(1, 2)], [(1, "city", "A")])
    later = earlier.copy()
    later.add_social_node(3)
    later.add_attribute_edge(3, "city:B", attr_type="city", value="B")
    later.add_attribute_edge(2, "city:A", attr_type="city", value="A")
    later.add_social_edge(3, 1)
    later.add_social_edge(2, 1)

    history = ArrivalHistory.from_snapshots(earlier, later)
    final = history.final_san()
    assert final.number_of_social_edges() == later.number_of_social_edges()
    assert final.number_of_attribute_edges() == later.number_of_attribute_edges()
    assert history.num_node_joins() == 1
    assert history.num_social_links() == 2
    # New nodes and their attributes come before the new social links.
    kinds = [event.kind for event in history.events]
    assert kinds.index("node") < kinds.index("social")


def test_apply_event_kinds():
    san = SAN()
    apply_event(san, ArrivalEvent("node", 5))
    apply_event(san, ArrivalEvent("attribute", 5, "a", attr_type="t"))
    apply_event(san, ArrivalEvent("social", 5, 6))
    assert san.is_social_node(6)
    assert san.has_attribute_edge(5, "a")
    assert san.attribute_type("a") == "t"
