"""Tests for common-neighbour helpers and closure classification."""

import pytest

from repro.algorithms import (
    ClosureBreakdown,
    classify_closures,
    count_directed_triangles,
    is_focal_closure,
    is_triadic_closure,
    two_hop_san_neighbors,
    two_hop_social_neighbors,
)
from repro.graph import san_from_edge_lists


def test_two_hop_social_neighbors(figure1_san):
    # Node 4 -> 2; 2's neighbors are {1, 3, 4}; exclude 4 itself and its direct neighbors.
    hops = two_hop_social_neighbors(figure1_san, 4)
    assert 1 in hops and 3 in hops
    assert 4 not in hops
    assert 2 not in hops  # direct neighbor


def test_two_hop_san_neighbors_includes_attribute_paths(figure1_san):
    # Node 1 shares employer:Google with 2 (already direct) and can reach
    # school:UC Berkeley members only via social paths; 6 shares city with 5.
    hops = two_hop_san_neighbors(figure1_san, 6)
    assert 5 not in hops  # direct neighbor
    # via city:San Francisco -> member 5 (direct), via 4 -> 2, via 5 -> 3, 6 excluded.
    assert 2 in hops or 3 in hops


def test_two_hop_neighbors_isolated_node():
    san = san_from_edge_lists([(1, 2)])
    san.add_social_node(99)
    assert two_hop_social_neighbors(san, 99) == set()
    assert two_hop_san_neighbors(san, 99) == set()


def test_is_triadic_and_focal_closure(figure1_san):
    # 1 and 4 share social neighbor 2 but no attributes.
    assert is_triadic_closure(figure1_san, 1, 4)
    assert not is_focal_closure(figure1_san, 1, 4)
    # 4 and 5 share major:Computer Science and the social neighbor 6.
    assert is_focal_closure(figure1_san, 4, 5)
    assert is_triadic_closure(figure1_san, 4, 5)
    # 1 and 6 share neither social neighbors nor attributes.
    assert not is_triadic_closure(figure1_san, 1, 6)
    assert not is_focal_closure(figure1_san, 1, 6)


def test_classify_closures_counts(figure1_san):
    edges = [(1, 4), (4, 5), (1, 6)]
    breakdown = classify_closures(figure1_san, edges)
    assert breakdown.total == 3
    assert breakdown.triadic == 2   # (1,4) and (4,5)
    assert breakdown.focal == 1     # (4,5)
    assert breakdown.both == 1      # (4,5)
    assert breakdown.neither == 1   # (1,6)
    assert breakdown.triadic_fraction == pytest.approx(2 / 3)
    assert breakdown.neither_fraction == pytest.approx(1 / 3)


def test_classify_closures_skips_unknown_nodes(figure1_san):
    breakdown = classify_closures(figure1_san, [(1, 999)])
    assert breakdown.total == 0
    assert breakdown.triadic_fraction == 0.0


def test_closure_breakdown_empty():
    breakdown = ClosureBreakdown()
    assert breakdown.focal_fraction == 0.0
    assert breakdown.both_fraction == 0.0


def test_count_directed_triangles(clique_san, ring_san):
    # K6 has C(6,3) = 20 triangles in the undirected projection.
    assert count_directed_triangles(clique_san) == 20
    assert count_directed_triangles(ring_san) == 0
