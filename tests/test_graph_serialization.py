"""Round-trip tests for SAN serialization."""

import pytest

from repro.graph import (
    load_san_json,
    load_san_tsv,
    save_san_json,
    save_san_tsv,
)
from repro.graph.errors import SerializationError


def test_tsv_round_trip(tmp_path, figure1_san):
    social = tmp_path / "social.tsv"
    attrs = tmp_path / "attrs.tsv"
    save_san_tsv(figure1_san, social, attrs)
    loaded = load_san_tsv(social, attrs)
    assert loaded.number_of_social_nodes() == figure1_san.number_of_social_nodes()
    assert loaded.number_of_social_edges() == figure1_san.number_of_social_edges()
    assert loaded.number_of_attribute_edges() == figure1_san.number_of_attribute_edges()
    assert loaded.has_social_edge(1, 2)
    assert loaded.attribute_type("employer:Google") == "employer"


def test_tsv_integer_ids_preserved(tmp_path, figure1_san):
    social = tmp_path / "social.tsv"
    attrs = tmp_path / "attrs.tsv"
    save_san_tsv(figure1_san, social, attrs)
    loaded = load_san_tsv(social, attrs)
    assert all(isinstance(node, int) for node in loaded.social_nodes())


def test_tsv_malformed_social_raises(tmp_path):
    social = tmp_path / "social.tsv"
    attrs = tmp_path / "attrs.tsv"
    social.write_text("1\t2\t3\n")
    attrs.write_text("")
    with pytest.raises(SerializationError):
        load_san_tsv(social, attrs)


def test_tsv_malformed_attribute_raises(tmp_path):
    social = tmp_path / "social.tsv"
    attrs = tmp_path / "attrs.tsv"
    social.write_text("1\t2\n")
    attrs.write_text("1\temployer\n")
    with pytest.raises(SerializationError):
        load_san_tsv(social, attrs)


def test_json_round_trip(tmp_path, figure1_san):
    path = tmp_path / "san.json"
    save_san_json(figure1_san, path)
    loaded = load_san_json(path)
    assert loaded.number_of_social_edges() == figure1_san.number_of_social_edges()
    assert loaded.number_of_attribute_edges() == figure1_san.number_of_attribute_edges()
    assert loaded.attribute_info("city:San Francisco").value == "San Francisco"


def test_json_invalid_raises(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(SerializationError):
        load_san_json(path)


def test_json_empty_document(tmp_path):
    path = tmp_path / "empty.json"
    path.write_text("{}")
    loaded = load_san_json(path)
    assert loaded.number_of_social_nodes() == 0
