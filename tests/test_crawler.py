"""Tests for the privacy model, BFS crawler, and daily snapshot series."""

import pytest

from repro.crawler import (
    FULLY_PUBLIC,
    BFSCrawler,
    DailyCrawler,
    PrivacyModel,
    crawl_evolution,
    crawl_snapshot,
)
from repro.graph import san_from_edge_lists


def test_privacy_model_is_deterministic_per_user():
    privacy = PrivacyModel(hide_links_probability=0.5, seed=3)
    decisions = [privacy.hides_links(user) for user in range(50)]
    assert decisions == [privacy.hides_links(user) for user in range(50)]
    assert any(decisions) and not all(decisions)


def test_privacy_model_extremes():
    assert not FULLY_PUBLIC.hides_links(1)
    assert not FULLY_PUBLIC.hides_attributes(1)
    always = PrivacyModel(hide_links_probability=1.0, hide_attributes_probability=1.0)
    assert always.hides_links("anyone") and always.hides_attributes("anyone")
    with pytest.raises(ValueError):
        PrivacyModel(hide_links_probability=2.0)


def test_full_crawl_recovers_connected_ground_truth(figure1_san):
    result = crawl_snapshot(figure1_san, seeds=[1])
    assert result.coverage == 1.0
    assert result.san.number_of_social_edges() == figure1_san.number_of_social_edges()
    assert result.san.number_of_attribute_edges() == figure1_san.number_of_attribute_edges()


def test_crawl_only_reaches_weakly_connected_component():
    ground_truth = san_from_edge_lists([(1, 2), (2, 3), (10, 11)])
    result = crawl_snapshot(ground_truth, seeds=[1])
    assert result.san.number_of_social_nodes() == 3
    assert result.coverage == pytest.approx(3 / 5)
    assert not result.san.is_social_node(10)


def test_crawl_uses_incoming_lists_too():
    # Seed 3 has no outgoing links; it is discoverable only via incoming lists.
    ground_truth = san_from_edge_lists([(1, 3), (2, 3), (1, 2)])
    result = crawl_snapshot(ground_truth, seeds=[3])
    assert result.san.number_of_social_nodes() == 3


def test_crawl_empty_ground_truth():
    from repro.graph import SAN

    result = crawl_snapshot(SAN())
    assert result.coverage == 0.0
    assert result.san.number_of_social_nodes() == 0


def test_crawl_max_nodes_truncates(figure1_san):
    result = crawl_snapshot(figure1_san, seeds=[1], max_nodes=2)
    assert result.san.number_of_social_nodes() <= figure1_san.number_of_social_nodes()
    assert len(result.visited) >= 2


def test_private_links_reduce_edge_coverage(tiny_evolution):
    ground_truth = tiny_evolution.final_san()
    public = crawl_snapshot(ground_truth)
    private = crawl_snapshot(
        ground_truth, privacy=PrivacyModel(hide_links_probability=0.5, seed=1)
    )
    assert private.san.number_of_social_edges() <= public.san.number_of_social_edges()


def test_hidden_attributes_are_not_collected(figure1_san):
    privacy = PrivacyModel(hide_attributes_probability=1.0)
    result = crawl_snapshot(figure1_san, seeds=[1], privacy=privacy)
    assert result.san.number_of_attribute_edges() == 0


def test_crawl_series_expands_and_covers(tiny_evolution, tiny_snapshot_days, tiny_snapshots):
    series = tiny_snapshots
    assert len(series) == len(tiny_snapshot_days)
    sizes = [san.number_of_social_nodes() for _, san in series]
    assert sizes == sorted(sizes)
    # Coverage stays high (paper: >= 70%).
    assert all(coverage >= 0.7 for coverage in series.coverage.values())
    assert series.days() == tiny_snapshot_days


def test_snapshot_series_accessors(tiny_snapshots, tiny_snapshot_days):
    assert tiny_snapshots.at(tiny_snapshot_days[0]).number_of_social_nodes() > 0
    with pytest.raises(KeyError):
        tiny_snapshots.at(9999)
    assert tiny_snapshots.last().number_of_social_nodes() >= tiny_snapshots.halfway().number_of_social_nodes()
    assert tiny_snapshots.halfway_day() in tiny_snapshot_days


def test_snapshot_series_empty_errors():
    from repro.crawler import SnapshotSeries

    empty = SnapshotSeries()
    with pytest.raises(ValueError):
        empty.last()
    with pytest.raises(ValueError):
        empty.halfway()


def test_crawl_evolution_with_privacy(tiny_evolution, tiny_snapshot_days):
    series = crawl_evolution(
        tiny_evolution,
        tiny_snapshot_days[-2:],
        privacy=PrivacyModel(hide_links_probability=0.05, seed=2),
    )
    assert len(series) == 2
    assert all(coverage > 0.5 for coverage in series.coverage.values())
