"""Tests for the privacy model, BFS crawler, and daily snapshot series."""

import pytest

from repro.crawler import (
    FULLY_PUBLIC,
    PrivacyModel,
    crawl_evolution,
    crawl_snapshot,
)
from repro.graph import san_from_edge_lists


def test_privacy_model_is_deterministic_per_user():
    privacy = PrivacyModel(hide_links_probability=0.5, seed=3)
    decisions = [privacy.hides_links(user) for user in range(50)]
    assert decisions == [privacy.hides_links(user) for user in range(50)]
    assert any(decisions) and not all(decisions)


def test_privacy_model_extremes():
    assert not FULLY_PUBLIC.hides_links(1)
    assert not FULLY_PUBLIC.hides_attributes(1)
    always = PrivacyModel(hide_links_probability=1.0, hide_attributes_probability=1.0)
    assert always.hides_links("anyone") and always.hides_attributes("anyone")
    with pytest.raises(ValueError):
        PrivacyModel(hide_links_probability=2.0)


def test_full_crawl_recovers_connected_ground_truth(figure1_san):
    result = crawl_snapshot(figure1_san, seeds=[1])
    assert result.coverage == 1.0
    assert result.san.number_of_social_edges() == figure1_san.number_of_social_edges()
    assert result.san.number_of_attribute_edges() == figure1_san.number_of_attribute_edges()


def test_crawl_only_reaches_weakly_connected_component():
    ground_truth = san_from_edge_lists([(1, 2), (2, 3), (10, 11)])
    result = crawl_snapshot(ground_truth, seeds=[1])
    assert result.san.number_of_social_nodes() == 3
    assert result.coverage == pytest.approx(3 / 5)
    assert not result.san.is_social_node(10)


def test_crawl_uses_incoming_lists_too():
    # Seed 3 has no outgoing links; it is discoverable only via incoming lists.
    ground_truth = san_from_edge_lists([(1, 3), (2, 3), (1, 2)])
    result = crawl_snapshot(ground_truth, seeds=[3])
    assert result.san.number_of_social_nodes() == 3


def test_crawl_empty_ground_truth():
    from repro.graph import SAN

    result = crawl_snapshot(SAN())
    assert result.coverage == 0.0
    assert result.san.number_of_social_nodes() == 0


def test_crawl_max_nodes_truncates(figure1_san):
    result = crawl_snapshot(figure1_san, seeds=[1], max_nodes=2)
    assert result.san.number_of_social_nodes() <= figure1_san.number_of_social_nodes()
    assert len(result.visited) >= 2


def test_private_links_reduce_edge_coverage(tiny_evolution):
    ground_truth = tiny_evolution.final_san()
    public = crawl_snapshot(ground_truth)
    private = crawl_snapshot(
        ground_truth, privacy=PrivacyModel(hide_links_probability=0.5, seed=1)
    )
    assert private.san.number_of_social_edges() <= public.san.number_of_social_edges()


def test_hidden_attributes_are_not_collected(figure1_san):
    privacy = PrivacyModel(hide_attributes_probability=1.0)
    result = crawl_snapshot(figure1_san, seeds=[1], privacy=privacy)
    assert result.san.number_of_attribute_edges() == 0


def test_crawl_series_expands_and_covers(tiny_evolution, tiny_snapshot_days, tiny_snapshots):
    series = tiny_snapshots
    assert len(series) == len(tiny_snapshot_days)
    sizes = [san.number_of_social_nodes() for _, san in series]
    assert sizes == sorted(sizes)
    # Coverage stays high (paper: >= 70%).
    assert all(coverage >= 0.7 for coverage in series.coverage.values())
    assert series.days() == tiny_snapshot_days


def test_snapshot_series_accessors(tiny_snapshots, tiny_snapshot_days):
    assert tiny_snapshots.at(tiny_snapshot_days[0]).number_of_social_nodes() > 0
    with pytest.raises(KeyError):
        tiny_snapshots.at(9999)
    assert tiny_snapshots.last().number_of_social_nodes() >= tiny_snapshots.halfway().number_of_social_nodes()
    assert tiny_snapshots.halfway_day() in tiny_snapshot_days


def test_snapshot_series_empty_errors():
    from repro.crawler import SnapshotSeries

    empty = SnapshotSeries()
    with pytest.raises(ValueError):
        empty.last()
    with pytest.raises(ValueError):
        empty.halfway()


def test_crawl_evolution_with_privacy(tiny_evolution, tiny_snapshot_days):
    series = crawl_evolution(
        tiny_evolution,
        tiny_snapshot_days[-2:],
        privacy=PrivacyModel(hide_links_probability=0.05, seed=2),
    )
    assert len(series) == 2
    assert all(coverage > 0.5 for coverage in series.coverage.values())


# ----------------------------------------------------------------------
# Privacy-model edge cases and the visibility sweep
# ----------------------------------------------------------------------
def test_privacy_salts_keep_link_and_attribute_decisions_independent():
    privacy = PrivacyModel(
        hide_links_probability=0.5, hide_attributes_probability=0.5, seed=11
    )
    users = range(200)
    link_decisions = [privacy.hides_links(user) for user in users]
    attribute_decisions = [privacy.hides_attributes(user) for user in users]
    # Same seed, different salt: the two decision streams must not collapse
    # onto each other (a shared stream would correlate the two hiding rates).
    assert link_decisions != attribute_decisions
    same_seed = PrivacyModel(
        hide_links_probability=0.5, hide_attributes_probability=0.5, seed=11
    )
    assert link_decisions == [same_seed.hides_links(user) for user in users]
    other_seed = PrivacyModel(hide_links_probability=0.5, seed=12)
    assert link_decisions != [other_seed.hides_links(user) for user in users]


def test_hiding_decisions_are_monotone_in_the_rate():
    """With one seed, raising the hide rate only ever hides *more* users."""
    users = range(200)
    hidden_sets = []
    for rate in (0.0, 0.2, 0.5, 0.8, 1.0):
        privacy = PrivacyModel(hide_links_probability=rate, seed=5)
        hidden_sets.append({user for user in users if privacy.hides_links(user)})
    assert hidden_sets[0] == set()
    assert len(hidden_sets[-1]) == 200
    for smaller, larger in zip(hidden_sets, hidden_sets[1:]):
        assert smaller <= larger


def test_visibility_sweep_monotonically_shrinks_the_crawl(tiny_evolution):
    """More hiding can only cost the crawler edges, never gain them."""
    ground_truth = tiny_evolution.final_san()
    seeds = sorted(ground_truth.social_nodes(), key=str)[:10]
    edge_counts = []
    for rate in (0.0, 0.2, 0.5, 0.8, 1.0):
        privacy = PrivacyModel(hide_links_probability=rate, seed=7)
        result = crawl_snapshot(ground_truth, seeds=seeds, privacy=privacy)
        edge_counts.append(result.san.number_of_social_edges())
    assert edge_counts == sorted(edge_counts, reverse=True)
    assert edge_counts[0] > edge_counts[-1]


def test_everyone_hiding_links_strands_the_crawl_at_its_seeds(figure1_san):
    privacy = PrivacyModel(hide_links_probability=1.0)
    seeds = sorted(figure1_san.social_nodes(), key=str)[:2]
    result = crawl_snapshot(figure1_san, seeds=seeds, privacy=privacy)
    # No user exposes a circle list, so BFS can never leave the seed set.
    assert set(result.visited) == set(seeds)
    assert result.san.number_of_social_edges() == 0
