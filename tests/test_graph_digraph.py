"""Unit tests for the directed-graph substrate."""

import pytest

from repro.graph import DiGraph
from repro.graph.errors import EdgeNotFoundError, NodeNotFoundError


def test_empty_graph_has_no_nodes_or_edges():
    graph = DiGraph()
    assert graph.number_of_nodes() == 0
    assert graph.number_of_edges() == 0
    assert list(graph.nodes()) == []
    assert list(graph.edges()) == []


def test_add_edge_creates_both_endpoints():
    graph = DiGraph()
    assert graph.add_edge("a", "b") is True
    assert graph.has_node("a") and graph.has_node("b")
    assert graph.has_edge("a", "b")
    assert not graph.has_edge("b", "a")


def test_add_edge_is_idempotent():
    graph = DiGraph()
    assert graph.add_edge(1, 2) is True
    assert graph.add_edge(1, 2) is False
    assert graph.number_of_edges() == 1


def test_constructor_accepts_edge_iterable():
    graph = DiGraph([(1, 2), (2, 3), (3, 1)])
    assert graph.number_of_nodes() == 3
    assert graph.number_of_edges() == 3


def test_in_and_out_degree():
    graph = DiGraph([(1, 2), (1, 3), (3, 2)])
    assert graph.out_degree(1) == 2
    assert graph.in_degree(1) == 0
    assert graph.in_degree(2) == 2
    assert graph.out_degree(2) == 0


def test_neighbors_union_excludes_self():
    graph = DiGraph([(1, 2), (2, 1), (1, 1)])
    assert graph.neighbors(1) == {2}
    assert graph.degree(1) == 1


def test_is_reciprocal():
    graph = DiGraph([(1, 2), (2, 1), (2, 3)])
    assert graph.is_reciprocal(1, 2)
    assert graph.is_reciprocal(2, 1)
    assert not graph.is_reciprocal(2, 3)


def test_successors_of_missing_node_raises():
    graph = DiGraph()
    with pytest.raises(NodeNotFoundError):
        graph.successors("missing")
    with pytest.raises(NodeNotFoundError):
        graph.predecessors("missing")


def test_remove_edge():
    graph = DiGraph([(1, 2), (2, 3)])
    graph.remove_edge(1, 2)
    assert not graph.has_edge(1, 2)
    assert graph.number_of_edges() == 1
    with pytest.raises(EdgeNotFoundError):
        graph.remove_edge(1, 2)


def test_remove_node_removes_incident_edges():
    graph = DiGraph([(1, 2), (2, 3), (3, 1), (2, 1)])
    graph.remove_node(2)
    assert not graph.has_node(2)
    assert graph.number_of_edges() == 1
    assert graph.has_edge(3, 1)


def test_remove_node_with_self_loop_keeps_edge_count_consistent():
    graph = DiGraph([(1, 1), (1, 2)])
    graph.remove_node(1)
    assert graph.number_of_edges() == 0
    assert graph.number_of_nodes() == 1


def test_remove_missing_node_raises():
    graph = DiGraph()
    with pytest.raises(NodeNotFoundError):
        graph.remove_node(7)


def test_copy_is_independent():
    graph = DiGraph([(1, 2)])
    clone = graph.copy()
    clone.add_edge(2, 3)
    assert graph.number_of_edges() == 1
    assert clone.number_of_edges() == 2


def test_subgraph_keeps_only_internal_edges():
    graph = DiGraph([(1, 2), (2, 3), (3, 4), (4, 1)])
    sub = graph.subgraph([1, 2, 3])
    assert sub.number_of_nodes() == 3
    assert sub.has_edge(1, 2) and sub.has_edge(2, 3)
    assert not sub.has_edge(3, 4)


def test_reverse_flips_edges():
    graph = DiGraph([(1, 2), (2, 3)])
    reversed_graph = graph.reverse()
    assert reversed_graph.has_edge(2, 1)
    assert reversed_graph.has_edge(3, 2)
    assert reversed_graph.number_of_edges() == 2
    assert not reversed_graph.has_edge(1, 2)


def test_to_undirected_adjacency_symmetric():
    graph = DiGraph([(1, 2), (3, 2)])
    adjacency = graph.to_undirected_adjacency()
    assert adjacency[1] == {2}
    assert adjacency[2] == {1, 3}
    assert adjacency[3] == {2}


def test_edge_count_tracks_additions_and_removals():
    graph = DiGraph()
    for i in range(5):
        graph.add_edge(i, i + 1)
    assert graph.number_of_edges() == 5
    graph.remove_edge(0, 1)
    assert graph.number_of_edges() == 4
    assert len(list(graph.edges())) == 4


def test_len_and_contains():
    graph = DiGraph([(1, 2)])
    assert len(graph) == 2
    assert 1 in graph
    assert 5 not in graph
