"""Tests for HyperANF and effective-diameter estimation."""

import pytest

from repro.algorithms import (
    effective_diameter,
    effective_diameter_from_neighbourhood,
    exact_neighbourhood_function,
    neighbourhood_function,
)
from repro.graph import DiGraph, san_from_edge_lists


def _path_graph(n):
    return DiGraph([(i, i + 1) for i in range(n - 1)])


def test_neighbourhood_function_monotone(ring_san):
    totals = neighbourhood_function(ring_san.social, precision=8)
    assert all(b >= a - 1e-6 for a, b in zip(totals, totals[1:]))


def test_exact_neighbourhood_function_ring(ring_san):
    totals = exact_neighbourhood_function(ring_san.social)
    # N(0) = 10 self pairs, N(9) = all 100 ordered pairs.
    assert totals[0] == 10
    assert totals[-1] == 100
    assert len(totals) == 10


def test_hyperanf_close_to_exact_on_ring(ring_san):
    approx = neighbourhood_function(ring_san.social, precision=10)
    exact = exact_neighbourhood_function(ring_san.social)
    assert abs(approx[-1] - exact[-1]) / exact[-1] < 0.15


def test_effective_diameter_path_graph():
    graph = _path_graph(11)  # directed path, max distance 10
    diameter = effective_diameter(graph, precision=10)
    exact = exact_neighbourhood_function(graph)
    exact_diameter = effective_diameter_from_neighbourhood(exact)
    assert abs(diameter - exact_diameter) < 1.5
    assert exact_diameter > 5


def test_effective_diameter_clique_is_one(clique_san):
    diameter = effective_diameter(clique_san.social, precision=9)
    assert diameter <= 1.5


def test_effective_diameter_empty_graph():
    assert effective_diameter(DiGraph(), precision=6) == 0.0


def test_effective_diameter_from_neighbourhood_edge_cases():
    assert effective_diameter_from_neighbourhood([10.0]) == 0.0
    assert effective_diameter_from_neighbourhood([10.0, 10.0]) == 0.0
    # All reachable pairs found at distance 1.
    assert effective_diameter_from_neighbourhood([10.0, 110.0]) == pytest.approx(0.9, abs=0.2)


def test_effective_diameter_disconnected_components():
    san = san_from_edge_lists([(1, 2), (2, 1), (3, 4), (4, 3)])
    diameter = effective_diameter(san.social, precision=8)
    assert diameter <= 1.5
