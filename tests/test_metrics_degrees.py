"""Tests for degree sequences and distributions."""

import pytest

from repro.metrics import (
    attribute_degrees_of_social_nodes,
    degree_distribution,
    degree_summary,
    log_binned_degree_distribution,
    out_degrees_for_attribute_value,
    social_degrees_of_attribute_nodes,
    social_in_degrees,
    social_out_degrees,
    social_total_degrees,
)


def test_out_and_in_degrees(figure1_san):
    out_degrees = social_out_degrees(figure1_san)
    in_degrees = social_in_degrees(figure1_san)
    assert sum(out_degrees) == figure1_san.number_of_social_edges()
    assert sum(in_degrees) == figure1_san.number_of_social_edges()
    assert len(out_degrees) == 6


def test_total_degrees(clique_san):
    assert social_total_degrees(clique_san) == [5] * 6


def test_attribute_degree_sequences(figure1_san):
    attr_degrees = attribute_degrees_of_social_nodes(figure1_san)
    assert sorted(attr_degrees) == [1, 1, 1, 1, 2, 2]
    attr_social = social_degrees_of_attribute_nodes(figure1_san)
    assert sorted(attr_social) == [2, 2, 2, 2]


def test_degree_distribution_sums_to_one(figure1_san):
    pmf = degree_distribution(social_out_degrees(figure1_san))
    assert sum(pmf.values()) == pytest.approx(1.0)


def test_log_binned_degree_distribution(figure1_san):
    points = log_binned_degree_distribution(social_out_degrees(figure1_san))
    assert all(density >= 0 for _, density in points)


def test_degree_summary(figure1_san):
    summary = degree_summary(figure1_san)
    assert summary["mean_out_degree"] == pytest.approx(10 / 6)
    assert summary["mean_in_degree"] == pytest.approx(10 / 6)
    assert summary["max_out_degree"] >= summary["mean_out_degree"]
    assert summary["mean_attribute_degree"] == pytest.approx(8 / 6)
    assert summary["mean_attribute_social_degree"] == pytest.approx(2.0)


def test_degree_summary_empty():
    from repro.graph import SAN

    summary = degree_summary(SAN())
    assert summary["mean_out_degree"] == 0.0
    assert summary["max_in_degree"] == 0


def test_out_degrees_for_attribute_value(figure1_san):
    degrees = out_degrees_for_attribute_value(figure1_san, "employer:Google")
    assert sorted(degrees) == sorted(
        [figure1_san.social_out_degree(1), figure1_san.social_out_degree(2)]
    )
    assert out_degrees_for_attribute_value(figure1_san, "employer:Missing") == []
