"""Tests for the backend-dispatch engine: registry semantics, backend
resolution, scipy gating, freeze-on-demand, and introspection."""

from __future__ import annotations

import pytest

from repro import engine
from repro.engine import deps
from repro.engine.registry import (
    FROZEN,
    MUTABLE,
    PARALLEL,
    Kernel,
    NoKernelError,
    UnknownOperationError,
    backend_of,
    dispatch,
    graph_size,
    kernels_for,
    list_ops,
    resolve,
)
from repro.graph import SAN, san_from_edge_lists


@pytest.fixture
def small_san() -> SAN:
    return san_from_edge_lists(
        [(1, 2), (2, 1), (2, 3)], [(1, "employer", "Google")]
    )


class TestBackendResolution:
    def test_backend_of(self, small_san):
        assert backend_of(small_san) == MUTABLE
        assert backend_of(small_san.freeze()) == FROZEN
        assert backend_of(small_san.social) == MUTABLE
        assert backend_of(small_san.freeze().social) == FROZEN
        assert backend_of(object()) == MUTABLE  # unknown objects act portable

    def test_graph_size(self, small_san):
        assert graph_size(small_san) == 4  # 3 social + 1 attribute link
        assert graph_size(small_san.social) == 3
        assert graph_size(object()) == 0

    def test_resolve_picks_backend_kernel(self, small_san):
        assert resolve("reciprocal_edge_count", small_san).backend == MUTABLE
        assert resolve("reciprocal_edge_count", small_san.freeze()).backend == FROZEN

    def test_frozen_input_falls_back_to_portable(self, small_san):
        # "sybil.acceptance_probability" has a frozen kernel; pick an op that
        # does not: register a throwaway portable-only op.
        engine.register("test.portable_only", lambda graph: "portable", backend=MUTABLE)
        assert dispatch("test.portable_only", small_san.freeze()) == "portable"


class TestRegistryErrors:
    def test_unknown_operation(self, small_san):
        with pytest.raises(UnknownOperationError):
            dispatch("no.such.op", small_san)
        with pytest.raises(UnknownOperationError):
            resolve("no.such.op", small_san)
        with pytest.raises(UnknownOperationError):
            kernels_for("no.such.op")

    def test_unknown_requirement_rejected(self):
        with pytest.raises(ValueError):
            engine.register("test.bad_req", lambda graph: None, requires="cuda")

    def test_no_kernel_for_backend(self, small_san):
        engine.register("test.frozen_only", lambda graph: "frozen", backend=FROZEN)
        with pytest.raises(NoKernelError):
            dispatch("test.frozen_only", small_san)
        assert dispatch("test.frozen_only", small_san.freeze()) == "frozen"

    def test_duplicate_registration_raises_named_error(self, small_san):
        def first(graph):
            return "first"

        def shadower(graph):
            return "shadower"

        engine.register("test.duplicate", first, backend=FROZEN, priority=5)
        with pytest.raises(engine.DuplicateKernelError) as excinfo:
            engine.register("test.duplicate", shadower, backend=FROZEN, priority=5)
        message = str(excinfo.value)
        assert "test.duplicate" in message and "priority 5" in message
        assert "first" in message and "shadower" in message
        # The registry is unchanged: the original kernel still dispatches.
        assert dispatch("test.duplicate", small_san.freeze()) == "first"
        # Distinct priority and distinct backend are both fine.
        engine.register("test.duplicate", shadower, backend=FROZEN, priority=6)
        engine.register("test.duplicate", shadower, backend=MUTABLE, priority=5)
        assert dispatch("test.duplicate", small_san.freeze()) == "shadower"

    def test_same_function_reregistration_replaces(self, small_san):
        def body(graph):
            return "one"

        entry = engine.register("test.rereg", body, backend=FROZEN, priority=3)
        assert entry.fn is body
        # Same module + qualname (a reloaded module re-decorating the same
        # definition) replaces the entry instead of raising.
        replacement = engine.register("test.rereg", body, backend=FROZEN, priority=3)
        assert replacement.fn is body
        assert len([k for k in kernels_for("test.rereg") if k.backend == FROZEN]) == 1
        assert dispatch("test.rereg", small_san.freeze()) == "one"


class TestPriorityAndRequirements:
    def test_higher_priority_wins(self, small_san):
        engine.register("test.prio", lambda graph: "low", backend=FROZEN, priority=0)
        engine.register("test.prio", lambda graph: "high", backend=FROZEN, priority=10)
        assert dispatch("test.prio", small_san.freeze()) == "high"

    def test_scipy_gate_respected(self, small_san, monkeypatch):
        engine.register(
            "test.gated", lambda graph: "sparse", backend=FROZEN,
            requires="scipy", priority=10,
        )
        engine.register("test.gated", lambda graph: "numpy", backend=FROZEN, priority=0)
        frozen = small_san.freeze()
        if deps.have_scipy():
            assert dispatch("test.gated", frozen) == "sparse"
        monkeypatch.setenv(deps.DISABLE_ENV_VAR, "1")
        assert not deps.have_scipy()
        assert dispatch("test.gated", frozen) == "numpy"

    def test_kernel_availability_probe(self):
        entry = Kernel(op="x", backend=FROZEN, fn=lambda graph: None, requires=("scipy",))
        assert entry.available() == deps.have_scipy()


class TestAutoFreeze:
    def test_auto_freeze_above_threshold(self, small_san, monkeypatch):
        # The fake kernels return different sentinels on purpose (to observe
        # which tier ran); keep the parity sanitizer from flagging them.
        monkeypatch.delenv(deps.SANITIZE_ENV_VAR, raising=False)
        seen = []
        engine.register(
            "test.autofreeze",
            lambda graph: seen.append(backend_of(graph)) or "portable",
            backend=MUTABLE,
        )
        engine.register(
            "test.autofreeze",
            lambda graph: seen.append(backend_of(graph)) or "frozen",
            backend=FROZEN,
        )
        try:
            engine.configure(auto_freeze_threshold=1)
            assert dispatch("test.autofreeze", small_san) == "frozen"
            engine.configure(auto_freeze_threshold=10_000)
            assert dispatch("test.autofreeze", small_san) == "portable"
        finally:
            engine.configure()  # restore: no auto-freezing
        assert dispatch("test.autofreeze", small_san) == "portable"
        assert seen == [FROZEN, MUTABLE, MUTABLE]

    def test_auto_freeze_caches_frozen_view_per_graph_state(self, small_san, monkeypatch):
        freezes = []
        original_freeze = SAN.freeze

        def counting_freeze(self):
            freezes.append(1)
            return original_freeze(self)

        monkeypatch.setattr(SAN, "freeze", counting_freeze)
        engine.register("test.cached_freeze", lambda graph: backend_of(graph), backend=MUTABLE)
        engine.register("test.cached_freeze", lambda graph: backend_of(graph), backend=FROZEN)
        try:
            engine.configure(auto_freeze_threshold=1)
            for _ in range(5):
                assert dispatch("test.cached_freeze", small_san) == FROZEN
            assert len(freezes) == 1  # one freeze, not one per dispatch
            small_san.add_social_edge(7, 8)  # mutation invalidates the view
            assert dispatch("test.cached_freeze", small_san) == FROZEN
            assert len(freezes) == 2
        finally:
            engine.configure()

    def test_auto_freeze_portable_fallback_loops_freeze_once(self, monkeypatch):
        """The reviewer scenario: without scipy, the clustering average falls
        back to per-node dispatches; those must reuse one cached frozen view
        instead of re-freezing the graph per node."""
        from repro.algorithms.clustering import average_social_clustering_coefficient

        monkeypatch.setenv(deps.DISABLE_ENV_VAR, "1")
        san = san_from_edge_lists([(1, 2), (2, 1), (1, 3), (3, 2), (2, 4)])
        expected = average_social_clustering_coefficient(san)
        freezes = []
        original_freeze = SAN.freeze

        def counting_freeze(self):
            freezes.append(1)
            return original_freeze(self)

        monkeypatch.setattr(SAN, "freeze", counting_freeze)
        try:
            engine.configure(auto_freeze_threshold=1)
            assert average_social_clustering_coefficient(san) == pytest.approx(expected)
            assert len(freezes) == 1
        finally:
            engine.configure()

    def test_auto_freeze_ignores_ops_without_frozen_kernel(self, small_san):
        engine.register("test.autofreeze_portable", lambda graph: backend_of(graph), backend=MUTABLE)
        try:
            engine.configure(auto_freeze_threshold=0)
            assert dispatch("test.autofreeze_portable", small_san) == MUTABLE
        finally:
            engine.configure()


class TestIntrospection:
    def test_list_ops_contains_migrated_operations(self):
        ops = list_ops()
        for expected in (
            "reciprocal_edge_count",
            "social_knn",
            "weakly_connected_components",
            "neighbourhood_function",
            "random_walks",
            "link_prediction.pair_features_batch",
            "sybil.identities_vs_compromised",
        ):
            assert expected in ops

    def test_kernels_for_reports_backends(self):
        backends = {entry.backend for entry in kernels_for("count_directed_triangles")}
        assert backends == {MUTABLE, FROZEN, PARALLEL}

    def test_dispatchable_exposes_op_and_wrapped(self):
        from repro.metrics.degrees import social_out_degrees

        assert social_out_degrees.op == "social_out_degrees"
        assert social_out_degrees.__wrapped__ is not social_out_degrees

    def test_every_op_has_a_portable_kernel(self):
        """Every operation must have a portable fallback implementation.

        For graph-dispatch operations that is the mutable-backend kernel; for
        the generative-model operation (which has no input graph) the
        reference per-node loop engine plays that role.
        """
        from repro.models.fast_sim import LOOP_ENGINE

        for op in list_ops():
            if op.startswith("test."):
                continue
            backends = {entry.backend for entry in kernels_for(op)}
            assert MUTABLE in backends or LOOP_ENGINE in backends, (
                f"{op} has no portable kernel"
            )
