"""Tests for goodness-of-fit statistics and best-fit model selection."""

import numpy as np
import pytest

from repro.fitting import (
    DiscreteLognormal,
    PowerLaw,
    best_fit,
    best_fit_name,
    bootstrap_p_value,
    compare_distributions,
    empirical_cdf,
    fit_power_law,
    ks_statistic,
    likelihood_ratio_test,
    lognormal_vs_power_law,
)


RNG = np.random.default_rng(23)


def test_empirical_cdf():
    support, cdf = empirical_cdf([1, 1, 2, 4])
    assert list(support) == [1, 2, 4]
    assert cdf[-1] == pytest.approx(1.0)
    assert cdf[0] == pytest.approx(0.5)


def test_ks_statistic_small_for_true_model():
    true = PowerLaw(alpha=2.3, xmin=1)
    samples = true.sample(4000, RNG)
    fitted = fit_power_law(samples)
    assert ks_statistic(samples, fitted.distribution) < 0.05


def test_ks_statistic_large_for_wrong_model():
    lognormal_samples = DiscreteLognormal(mu=2.5, sigma=0.4, xmin=1).sample(4000, RNG)
    wrong = PowerLaw(alpha=2.0, xmin=1)
    assert ks_statistic(lognormal_samples, wrong) > 0.2


def test_ks_statistic_requires_samples_at_xmin():
    with pytest.raises(ValueError):
        ks_statistic([1, 2], PowerLaw(alpha=2.0, xmin=10))


def test_likelihood_ratio_favours_true_family():
    samples = DiscreteLognormal(mu=1.6, sigma=0.7, xmin=1).sample(5000, RNG)
    result = lognormal_vs_power_law(samples)
    assert result.favours_first
    assert result.p_value < 0.05

    power_samples = PowerLaw(alpha=2.5, xmin=1).sample(5000, RNG)
    reverse = lognormal_vs_power_law(power_samples)
    # On power-law data the lognormal should not significantly beat the power law.
    assert (not reverse.favours_first) or reverse.p_value > 0.05 or abs(reverse.normalised_ratio) < 2


def test_likelihood_ratio_degenerate_input():
    dist_a = PowerLaw(alpha=2.0, xmin=1)
    dist_b = PowerLaw(alpha=2.0, xmin=1)
    result = likelihood_ratio_test([2, 2, 2], dist_a, dist_b)
    assert result.ratio == pytest.approx(0.0)
    assert result.p_value == 1.0


def test_compare_distributions_and_best_fit_lognormal_data():
    samples = DiscreteLognormal(mu=1.8, sigma=0.8, xmin=1).sample(4000, RNG)
    comparison = compare_distributions(samples)
    assert "lognormal" in comparison.fits
    assert comparison.best_name == "lognormal"
    assert comparison.ranked()[0] == "lognormal"
    assert best_fit_name(samples) == "lognormal"
    assert best_fit(samples).name == "lognormal"


def test_compare_distributions_power_law_data():
    samples = PowerLaw(alpha=2.6, xmin=1).sample(4000, RNG)
    name = best_fit_name(samples)
    assert name in ("power_law", "power_law_with_cutoff")


def test_compare_distributions_reports_ks(figure1_san=None):
    samples = PowerLaw(alpha=2.2, xmin=1).sample(1500, RNG)
    comparison = compare_distributions(samples)
    assert set(comparison.ks).issuperset({"power_law", "lognormal"})


def test_bootstrap_p_value_reasonable_for_true_model():
    samples = PowerLaw(alpha=2.4, xmin=1).sample(800, RNG)
    p_value = bootstrap_p_value(samples, fit_power_law, num_bootstraps=10, rng=RNG)
    assert 0.0 <= p_value <= 1.0
    # The true family should usually not be rejected outright.
    assert p_value >= 0.1
