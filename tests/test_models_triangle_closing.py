"""Tests for the triangle-closing models (Baseline, RR, RR-SAN)."""

import random
from collections import Counter

import pytest

from repro.graph import SAN, san_from_edge_lists
from repro.models import (
    BaselineClosing,
    RandomRandomClosing,
    RandomRandomSANClosing,
    evaluate_closure_models,
)


@pytest.fixture
def closure_san():
    """Source node 0 with social path to {2, 3} and an attribute path to 4."""
    edges = [(0, 1), (1, 2), (1, 3), (2, 3)]
    attributes = [(0, "employer", "G"), (4, "employer", "G"), (4, "city", "X")]
    san = san_from_edge_lists(edges, attributes)
    return san


def test_baseline_samples_from_two_hop(closure_san):
    model = BaselineClosing()
    generator = random.Random(1)
    samples = {model.sample_target(closure_san, 0, rng=generator) for _ in range(100)}
    assert samples <= {2, 3}
    assert model.target_probability(closure_san, 0, 2) == pytest.approx(0.5)
    assert model.target_probability(closure_san, 0, 4) == 0.0


def test_baseline_no_candidates():
    san = san_from_edge_lists([(0, 1)])
    assert BaselineClosing().sample_target(san, 0, rng=1) is None
    assert BaselineClosing().target_probability(san, 0, 1) == 0.0


def test_rr_probabilities_sum_to_at_most_one(closure_san):
    model = RandomRandomClosing()
    total = sum(
        model.target_probability(closure_san, 0, node)
        for node in closure_san.social_nodes()
        if node != 0
    )
    assert total <= 1.0 + 1e-9
    # From 0 the only first hop is 1, whose neighbors are {2, 3} -> 1/2 each.
    assert model.target_probability(closure_san, 0, 2) == pytest.approx(0.5)
    assert model.target_probability(closure_san, 0, 4) == 0.0


def test_rr_sampling_matches_support(closure_san):
    model = RandomRandomClosing()
    generator = random.Random(2)
    samples = {model.sample_target(closure_san, 0, rng=generator) for _ in range(100)}
    assert samples <= {2, 3}


def test_rr_isolated_source():
    san = SAN()
    san.add_social_node(9)
    assert RandomRandomClosing().sample_target(san, 9, rng=1) is None
    assert RandomRandomClosing().target_probability(san, 9, 9) == 0.0


def test_rr_san_reaches_attribute_community(closure_san):
    model = RandomRandomSANClosing(attribute_weight=1.0)
    # First hops from 0: social {1}, attribute {employer:G}; the attribute hop
    # leads to member 4.
    assert model.target_probability(closure_san, 0, 4) > 0.0
    generator = random.Random(3)
    samples = Counter(model.sample_target(closure_san, 0, rng=generator) for _ in range(300))
    assert samples[4] > 0
    assert set(samples) <= {2, 3, 4}


def test_rr_san_zero_weight_reduces_to_rr(closure_san):
    rr = RandomRandomClosing()
    rr_san = RandomRandomSANClosing(attribute_weight=0.0)
    for target in (2, 3, 4):
        assert rr_san.target_probability(closure_san, 0, target) == pytest.approx(
            rr.target_probability(closure_san, 0, target)
        )


def test_rr_san_probabilities_sum_to_at_most_one(closure_san):
    model = RandomRandomSANClosing(attribute_weight=2.0)
    total = sum(
        model.target_probability(closure_san, 0, node)
        for node in closure_san.social_nodes()
        if node != 0
    )
    assert total <= 1.0 + 1e-9


def test_rr_san_negative_weight_rejected():
    with pytest.raises(ValueError):
        RandomRandomSANClosing(attribute_weight=-1.0)


def test_evaluate_closure_models_prefers_rr_san_on_focal_edges(closure_san):
    # Observed closures: one triadic (0 -> 3) and one focal (0 -> 4).
    comparison = evaluate_closure_models(closure_san, [(0, 3), (0, 4)])
    assert comparison.num_edges_scored == 2
    averages = comparison.average_log_probabilities
    assert averages["rr_san"] > averages["random_random"]
    improvement = comparison.relative_improvement("rr_san", "random_random")
    assert improvement > 0


def test_evaluate_closure_models_requires_scorable_edges(closure_san):
    with pytest.raises(ValueError):
        evaluate_closure_models(closure_san, [(0, 1)])  # already an edge
    with pytest.raises(ValueError):
        evaluate_closure_models(closure_san, [])
