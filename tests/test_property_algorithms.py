"""Property-based tests for algorithms and metric invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    HyperLogLog,
    approximate_average_clustering,
    average_social_clustering_coefficient,
    bfs_distances,
    effective_diameter_from_histogram,
    weakly_connected_components,
)
from repro.graph import SAN
from repro.metrics import social_assortativity, social_knn
from repro.utils.stats import ccdf, percentile


edge_lists = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)),
    min_size=1,
    max_size=80,
)


def _san_from(edges):
    san = SAN()
    for source, target in edges:
        if source != target:
            san.add_social_edge(source, target)
        else:
            san.add_social_node(source)
    return san


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_bfs_distances_triangle_inequality_over_edges(edges):
    san = _san_from(edges)
    nodes = list(san.social_nodes())
    source = nodes[0]
    distances = bfs_distances(san.social, source)
    for u, v in san.social_edges():
        if u in distances:
            assert distances.get(v, float("inf")) <= distances[u] + 1


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_wcc_partitions_nodes(edges):
    san = _san_from(edges)
    components = weakly_connected_components(san.social)
    all_nodes = [node for component in components for node in component]
    assert len(all_nodes) == san.number_of_social_nodes()
    assert len(set(all_nodes)) == len(all_nodes)


@given(edge_lists)
@settings(max_examples=30, deadline=None)
def test_clustering_bounds_and_sampled_estimate(edges):
    san = _san_from(edges)
    exact = average_social_clustering_coefficient(san)
    assert 0.0 <= exact <= 1.0
    approx = approximate_average_clustering(
        san, num_samples=3000, rng=random.Random(0)
    )
    assert abs(approx - exact) < 0.15


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_assortativity_and_knn_bounds(edges):
    san = _san_from(edges)
    assert -1.0 <= social_assortativity(san) <= 1.0
    for degree, value in social_knn(san):
        assert degree >= 1
        assert value >= 0


@given(st.lists(st.integers(1, 10 ** 4), min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_hyperloglog_estimate_tracks_distinct_count(items):
    counter = HyperLogLog(precision=11)
    counter.update(items)
    distinct = len(set(items))
    assert abs(counter.cardinality() - distinct) <= max(5, 0.15 * distinct)


@given(st.dictionaries(st.integers(1, 15), st.integers(1, 100), min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_effective_diameter_within_histogram_support(histogram):
    diameter = effective_diameter_from_histogram(histogram, quantile=0.9)
    assert 0.0 <= diameter <= max(histogram)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_percentile_and_ccdf_consistency(values):
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)
    points = ccdf(values)
    assert points[0][1] == 1.0
    probabilities = [p for _, p in points]
    assert probabilities == sorted(probabilities, reverse=True)
