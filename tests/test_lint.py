"""Tests for the invariant linter (``repro lint``, :mod:`repro.lint`).

Three layers of coverage:

* the fixture corpus under ``tests/lint_fixtures/`` — every AST rule
  (R001-R005, R007-R009) both fires on a deliberate violation (lines
  marked ``# expect[R###]``) and stays silent on the corrected form;
* the suppression syntax — a justified ``lint-ignore`` silences a finding,
  a reasonless one is itself a finding, and ``--report-stale`` flags
  directives whose rule no longer fires;
* the gate itself — the full catalog over ``src/repro`` yields zero
  unsuppressed findings, and the live kernel registry passes R006.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from types import SimpleNamespace

import pytest

import repro
from repro.cli import main
from repro.lint import (
    FRAMEWORK_RULE,
    LintError,
    UnknownRuleError,
    all_rules,
    check_registry,
    load_full_registry,
    parse_suppressions,
    render_json,
    render_text,
    run_lint,
    select_rules,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
PACKAGE = Path(repro.__file__).parent

# Auto-discovered: adding r0xx_violation.py/r0xx_clean.py fixture pairs
# enrolls the new rule in the corpus tests below.
AST_RULES = tuple(
    sorted(p.stem.split("_")[0].upper() for p in FIXTURES.glob("r*_violation.py"))
)

_EXPECT_RE = re.compile(r"#\s*expect\[(R\d{3})\]")


def expected_findings(path: Path):
    """(line, rule) pairs declared by ``# expect[R###]`` markers."""
    expected = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            expected.add((lineno, match.group(1)))
    return expected


def findings_of(result):
    return {(item.line, item.rule) for item in result.findings}


class TestFixtureCorpus:
    @pytest.mark.parametrize("rule_id", AST_RULES)
    def test_rule_fires_on_violation_fixture(self, rule_id):
        fixture = FIXTURES / f"{rule_id.lower()}_violation.py"
        expected = expected_findings(fixture)
        assert expected, f"{fixture} declares no expected findings"
        result = run_lint([fixture], rule_ids=[rule_id])
        assert findings_of(result) == expected

    @pytest.mark.parametrize("rule_id", AST_RULES)
    def test_rule_passes_on_clean_fixture(self, rule_id):
        fixture = FIXTURES / f"{rule_id.lower()}_clean.py"
        result = run_lint([fixture], rule_ids=[rule_id])
        assert result.findings == []

    def test_violation_fixtures_fire_only_their_own_rule(self):
        # Each violation fixture is a counter-example for exactly one rule:
        # running the full AST catalog over it must not drag in others.
        for rule_id in AST_RULES:
            fixture = FIXTURES / f"{rule_id.lower()}_violation.py"
            result = run_lint([fixture], rule_ids=list(AST_RULES))
            assert {item.rule for item in result.findings} == {rule_id}

    def test_messages_name_the_remedy(self):
        result = run_lint(
            [FIXTURES / "r001_violation.py"], rule_ids=["R001"]
        )
        text = " ".join(item.message for item in result.findings)
        assert "seed" in text
        assert "default_rng" in text


class TestSuppressions:
    def test_justified_suppression_silences_trailing_and_standalone(self):
        result = run_lint([FIXTURES / "suppression_ok.py"], rule_ids=["R001"])
        assert result.findings == []
        assert len(result.suppressed) == 2
        assert result.stale == []

    def test_missing_reason_is_a_finding_and_suppresses_nothing(self):
        result = run_lint(
            [FIXTURES / "suppression_no_reason.py"], rule_ids=["R001"]
        )
        rules = sorted(item.rule for item in result.findings)
        assert rules == [FRAMEWORK_RULE, "R001"]
        r000 = next(i for i in result.findings if i.rule == FRAMEWORK_RULE)
        assert "no reason" in r000.message

    def test_stale_suppression_reported_only_on_request(self):
        fixture = FIXTURES / "suppression_stale.py"
        quiet = run_lint([fixture], rule_ids=["R001"])
        assert quiet.findings == []
        assert len(quiet.stale) == 1
        assert quiet.failures == []  # stale alone does not fail by default
        loud = run_lint([fixture], rule_ids=["R001"], report_stale=True)
        assert loud.failures == loud.stale
        assert "stale suppression" in loud.stale[0].message

    def test_stale_not_judged_for_unselected_rules(self):
        # Linting the stale fixture with only R002 active: the R001 directive
        # cannot be judged, so it is not reported stale.
        result = run_lint(
            [FIXTURES / "suppression_stale.py"],
            rule_ids=["R002"],
            report_stale=True,
        )
        assert result.stale == []

    def test_unknown_rule_id_in_directive(self, tmp_path):
        target = tmp_path / "unknown.py"
        target.write_text("x = 1  # repro: lint-ignore[R999] -- because\n")
        _, malformed = parse_suppressions(target, target.read_text())
        assert len(malformed) == 1
        assert "unknown rule" in malformed[0].message

    def test_malformed_directive_without_brackets(self, tmp_path):
        target = tmp_path / "malformed.py"
        target.write_text("x = 1  # repro: lint-ignore R001 -- because\n")
        result = run_lint([target], rule_ids=["R001"])
        assert [item.rule for item in result.findings] == [FRAMEWORK_RULE]
        assert "malformed" in result.findings[0].message

    def test_syntax_error_file_is_a_framework_finding(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n    pass\n")
        result = run_lint([target], rule_ids=["R001"])
        assert [item.rule for item in result.findings] == [FRAMEWORK_RULE]
        assert "cannot parse" in result.findings[0].message


class TestRuleSelection:
    def test_unknown_rule_rejected_with_catalog(self):
        with pytest.raises(UnknownRuleError) as excinfo:
            select_rules(["R42"])
        assert "R001" in str(excinfo.value)

    def test_empty_selection_rejected(self):
        with pytest.raises(LintError):
            select_rules([" ", ""])

    def test_catalog_is_complete(self):
        assert sorted(all_rules()) == [
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009", "R010",
        ]
        for rule in all_rules().values():
            assert rule.name and rule.description

    def test_missing_path_is_usage_error(self):
        with pytest.raises(LintError):
            run_lint([Path("/no/such/dir/anywhere")], rule_ids=["R001"])


def _kernel(priority, fn=None):
    return SimpleNamespace(priority=priority, fn=fn or (lambda graph: None))


class TestRegistryCoherence:
    def test_live_registry_is_coherent(self):
        registry = load_full_registry()
        assert len(registry) >= 40
        assert check_registry(registry) == []

    def test_missing_portable_body_flagged(self):
        registry = {"op.frozen_only": {"frozen": [_kernel(0)]}}
        findings = check_registry(registry)
        assert len(findings) == 1
        assert "portable" in findings[0].message
        assert findings[0].rule == "R006"

    def test_parallel_must_outrank_frozen(self):
        registry = {
            "op.tied": {
                "mutable": [_kernel(0)],
                "frozen": [_kernel(10)],
                "parallel": [_kernel(10)],
            }
        }
        findings = check_registry(registry)
        assert len(findings) == 1
        assert "exceed" in findings[0].message

    def test_parallel_without_frozen_counterpart_flagged(self):
        registry = {
            "op.orphan": {"mutable": [_kernel(0)], "parallel": [_kernel(20)]}
        }
        findings = check_registry(registry)
        assert len(findings) == 1
        assert "counterpart" in findings[0].message

    def test_equal_priority_duplicates_flagged(self):
        registry = {
            "op.dup": {
                "mutable": [_kernel(0)],
                "frozen": [_kernel(10), _kernel(10), _kernel(0)],
                "parallel": [_kernel(20)],
            }
        }
        findings = check_registry(registry)
        assert len(findings) == 1
        assert "duplicate" in findings[0].message

    def test_healthy_synthetic_registry_passes(self):
        registry = {
            "op.good": {
                "mutable": [_kernel(0)],
                "frozen": [_kernel(10), _kernel(0)],
                "parallel": [_kernel(20)],
            },
            "op.engine_backends": {"loop": [_kernel(0)], "vectorized": [_kernel(10)]},
        }
        assert check_registry(registry) == []


class TestRepositoryGate:
    def test_src_repro_has_zero_unsuppressed_findings(self):
        result = run_lint([PACKAGE])
        assert result.findings == [], render_text(result)

    def test_src_repro_has_no_stale_suppressions(self):
        result = run_lint([PACKAGE], report_stale=True)
        assert result.stale == [], render_text(result)

    def test_known_suppressions_are_justified(self):
        # The checked-in suppressions (rng entropy opt-in, manifest timing)
        # are exercised: removing one must surface as a finding, so the
        # suppressed list is the live inventory.
        result = run_lint([PACKAGE])
        suppressed = {(Path(i.path).name, i.rule) for i in result.suppressed}
        assert ("rng.py", "R001") in suppressed
        assert ("artifacts.py", "R004") in suppressed


class TestCli:
    def test_exit_zero_on_clean_path(self, capsys):
        code = main(["lint", str(FIXTURES / "r001_clean.py"), "--rules", "R001"])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, capsys):
        code = main(["lint", str(FIXTURES / "r001_violation.py"), "--rules", "R001"])
        assert code == 1
        out = capsys.readouterr().out
        assert "R001" in out and "r001_violation.py" in out

    def test_exit_two_on_unknown_rule(self, capsys):
        code = main(["lint", str(FIXTURES), "--rules", "R042"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_exit_two_on_missing_path(self, capsys):
        code = main(["lint", "/no/such/dir/anywhere", "--rules", "R001"])
        assert code == 2

    def test_json_format_round_trips(self, capsys):
        code = main(
            [
                "lint",
                str(FIXTURES / "r002_violation.py"),
                "--rules",
                "R002",
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["passed"] is False
        assert {item["rule"] for item in payload["findings"]} == {"R002"}

    def test_report_stale_flag_fails_the_run(self, capsys):
        fixture = str(FIXTURES / "suppression_stale.py")
        assert main(["lint", fixture, "--rules", "R001"]) == 0
        capsys.readouterr()
        assert main(["lint", fixture, "--rules", "R001", "--report-stale"]) == 1
        assert "stale suppression" in capsys.readouterr().out

    def test_baseline_workflow(self, tmp_path, capsys):
        fixture = str(FIXTURES / "r001_violation.py")
        baseline = tmp_path / "baseline.json"
        code = main(
            ["lint", fixture, "--rules", "R001", "--write-baseline", str(baseline)]
        )
        assert code == 0
        assert json.loads(baseline.read_text())["findings"]
        capsys.readouterr()
        code = main(
            ["lint", fixture, "--rules", "R001", "--baseline", str(baseline)]
        )
        assert code == 0
        assert "baselined" in capsys.readouterr().out

    def test_baselined_drifted_suppression_reported_once(self, tmp_path, capsys):
        # Regression: a finding that drifted off its suppression's covered
        # line and was then accepted into the baseline is ONE underlying
        # issue.  It must surface once (as baselined), not once per
        # mechanism — the directive is not reported stale on top.
        target = tmp_path / "drift.py"
        target.write_text(
            "import numpy as np\n"
            "\n"
            "# repro: lint-ignore[R001] -- entropy opt-in for the demo\n"
            "x = 1\n"
            "rng = np.random.default_rng()\n"
        )
        baseline = tmp_path / "baseline.json"
        assert main(
            ["lint", str(target), "--rules", "R001", "--write-baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        # Without the baseline the drift is two failures (finding + stale).
        assert main(["lint", str(target), "--rules", "R001", "--report-stale"]) == 1
        capsys.readouterr()
        # With it: zero failures, and no stale report for the directive.
        code = main(
            [
                "lint", str(target), "--rules", "R001",
                "--baseline", str(baseline), "--report-stale",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stale suppression:" not in out  # the R000 message marker
        assert "0 stale suppression(s)" in out
        assert "baselined" in out

    def test_genuinely_stale_suppression_still_fails_under_baseline(
        self, tmp_path, capsys
    ):
        # The satellite fix must not swallow real staleness: a directive
        # whose rule fires nowhere in the file stays a failure even when a
        # baseline (for some other file's finding) is in force.
        noisy = tmp_path / "noisy.py"
        noisy.write_text(
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        )
        baseline = tmp_path / "baseline.json"
        assert main(
            ["lint", str(noisy), "--rules", "R001", "--write-baseline", str(baseline)]
        ) == 0
        stale_only = tmp_path / "stale_only.py"
        stale_only.write_text(
            "# repro: lint-ignore[R001] -- nothing here draws entropy\n"
            "x = 1\n"
        )
        capsys.readouterr()
        code = main(
            [
                "lint", str(stale_only), "--rules", "R001",
                "--baseline", str(baseline), "--report-stale",
            ]
        )
        assert code == 1
        assert "stale suppression" in capsys.readouterr().out

    def test_baseline_missing_file_is_usage_error(self, capsys):
        code = main(
            ["lint", str(FIXTURES), "--baseline", "/no/such/baseline.json"]
        )
        assert code == 2

    def test_out_writes_report_even_on_failure(self, tmp_path, capsys):
        report = tmp_path / "lint" / "findings.json"
        code = main(
            [
                "lint",
                str(FIXTURES / "r003_violation.py"),
                "--rules",
                "R003",
                "--format",
                "json",
                "--out",
                str(report),
            ]
        )
        assert code == 1
        assert json.loads(report.read_text())["findings"]

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R006"):
            assert rule_id in out

    def test_default_target_is_the_package_and_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


class TestReporters:
    def test_text_reporter_one_row_per_finding(self):
        result = run_lint([FIXTURES / "r005_violation.py"], rule_ids=["R005"])
        text = render_text(result)
        assert "R005" in text
        assert text.count("r005_violation.py") == 1
        assert "1 finding(s)" in text

    def test_json_reporter_sorted_and_stable(self):
        result = run_lint([FIXTURES / "r001_violation.py"], rule_ids=["R001"])
        first = render_json(result)
        second = render_json(
            run_lint([FIXTURES / "r001_violation.py"], rule_ids=["R001"])
        )
        assert first == second
        payload = json.loads(first)
        lines = [item["line"] for item in payload["findings"]]
        assert lines == sorted(lines)
