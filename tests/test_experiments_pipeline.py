"""Tests for the experiment pipeline: DAG semantics, caching, parity.

Covers the three contract areas of the pipeline subsystem:

* **DAG semantics** — topological artifact ordering, unknown-dependency
  errors, cycle detection, unknown stage/scenario errors;
* **caching** — content-addressed hits, invalidation on scenario change and
  recipe-version bumps, warm reruns recomputing nothing;
* **parity** — pipeline stage outputs byte-identical to direct ``figure*``
  calls on the same artifacts, across cold/warm caches and ``--jobs``.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    ArtifactCycleError,
    ArtifactResolver,
    DEFAULT_FIGURE_SEED,
    UnknownArtifactError,
    UnknownExperimentError,
    UnknownScenarioError,
    artifact_names,
    artifact_topological_order,
    canonical_json,
    experiment_names,
    experiment_stages,
    get_experiment,
    get_scenario,
    pipeline_artifact_plan,
    register_artifact,
    register_experiment,
    run_pipeline,
    scenario_names,
    select_stages,
    unregister_artifact,
    unregister_experiment,
)
from repro.experiments.figures import (
    figure2_3_growth,
    figure5_degree_distributions,
    figure7_social_jdd,
    figure10_attribute_degrees,
    figure13_influence,
    section22_crawl_coverage,
)

#: Stage subset used by the shared pipeline fixture: covers the crawl-side
#: artifact closure (evolution, series, frozen views, reference, halfway)
#: without generating any model SAN, so the module stays fast.
PARITY_FIGURES = ("fig02_03", "sec22", "fig05", "fig07", "fig10", "fig13")


@pytest.fixture(scope="module")
def pipeline_cache(tmp_path_factory):
    return tmp_path_factory.mktemp("pipeline-cache")


@pytest.fixture(scope="module")
def tiny_pipeline(pipeline_cache):
    """A cold pipeline run of the parity stages on the tiny scenario."""
    return run_pipeline("tiny", figures=PARITY_FIGURES, cache_dir=pipeline_cache)


# ----------------------------------------------------------------------
# Registry / DAG semantics
# ----------------------------------------------------------------------
def test_every_figure_is_registered():
    names = experiment_names()
    assert len(names) == 20
    assert names[0] == "fig02_03" and names[-1] == "fidelity"
    for stage in experiment_stages().values():
        assert stage.needs, f"stage {stage.name} declares no artifacts"
        for need in stage.needs:
            assert need in artifact_names()


def test_package_exports_follow_the_registry():
    import repro.experiments as experiments

    for stage in experiment_stages().values():
        assert getattr(experiments, stage.fn.__name__) is stage.fn
        assert stage.fn.__name__ in experiments.__all__


def test_artifact_topological_order_is_dependency_closed():
    order = artifact_topological_order(["model_san"])
    assert order.index("evolution") < order.index("snapshot_series")
    assert order.index("snapshot_series") < order.index("reference_san")
    assert order.index("reference_san") < order.index("estimated_parameters")
    assert order.index("estimated_parameters") < order.index("model_san")
    # Requesting the full suite's artifacts stays a valid topological order.
    plan = pipeline_artifact_plan(select_stages())
    seen = set()
    for name in plan:
        from repro.experiments import artifact_spec

        assert all(dep in seen for dep in artifact_spec(name).needs)
        seen.add(name)


def test_unknown_artifact_dependency_is_an_error():
    register_experiment("t_broken", lambda x: x, needs=("no_such_artifact",))
    try:
        with pytest.raises(UnknownArtifactError, match="no_such_artifact"):
            pipeline_artifact_plan(select_stages(["t_broken"]))
    finally:
        unregister_experiment("t_broken")


def test_artifact_cycle_detection():
    register_artifact("t_cyc_a", lambda r: r.artifact("t_cyc_b"), needs=("t_cyc_b",))
    register_artifact("t_cyc_b", lambda r: r.artifact("t_cyc_a"), needs=("t_cyc_a",))
    try:
        with pytest.raises(ArtifactCycleError):
            artifact_topological_order(["t_cyc_a"])
        with pytest.raises(ArtifactCycleError):
            ArtifactResolver(get_scenario("tiny")).key("t_cyc_a")
    finally:
        unregister_artifact("t_cyc_a")
        unregister_artifact("t_cyc_b")


def test_unknown_stage_and_scenario_errors():
    with pytest.raises(UnknownExperimentError, match="fig99"):
        select_stages(["fig99"])
    with pytest.raises(UnknownExperimentError):
        get_experiment("not-a-stage")
    with pytest.raises(UnknownScenarioError, match="galactic"):
        get_scenario("galactic")


def test_scenario_presets_are_registered_and_tokenisable():
    names = scenario_names()
    for expected in (
        "paper-default",
        "tiny",
        "small",
        "large",
        "sparse",
        "dense",
        "high-reciprocity",
        "sybil-waves",
        "churn",
        "flash-crowd",
        "privacy-heavy",
    ):
        assert expected in names
        token = get_scenario(expected).cache_token()
        json.dumps(token, sort_keys=True)  # must be JSON-serializable


def test_figure_rng_defaults_are_seeded():
    """Regression: sampled figures default to the documented seed, not entropy."""
    import inspect

    from repro.experiments.figures import (
        figure4_evolution,
        figure8_attribute_structure,
        figure9_clustering_distributions,
        figure19_applications,
        section52_closure_comparison,
    )

    for fn in (
        figure4_evolution,
        figure8_attribute_structure,
        figure9_clustering_distributions,
        figure19_applications,
        section52_closure_comparison,
    ):
        assert (
            inspect.signature(fn).parameters["rng"].default == DEFAULT_FIGURE_SEED
        ), f"{fn.__name__} must default to DEFAULT_FIGURE_SEED"


# ----------------------------------------------------------------------
# Content-addressed caching
# ----------------------------------------------------------------------
def test_cache_hit_on_identical_scenario(tmp_path):
    scenario = get_scenario("tiny")
    first = ArtifactResolver(scenario, cache_dir=tmp_path)
    first.artifact("evolution")
    assert [e.status for e in first.events] == ["built"]

    second = ArtifactResolver(get_scenario("tiny"), cache_dir=tmp_path)
    evolution = second.artifact("evolution")
    assert [e.status for e in second.events] == ["cached"]
    assert evolution.num_days == scenario.config.num_days
    assert first.key("evolution") == second.key("evolution")


def test_cache_invalidation_on_scenario_change(tmp_path):
    from dataclasses import replace

    base = get_scenario("tiny")
    ArtifactResolver(base, cache_dir=tmp_path).artifact("evolution")

    changed = replace(base, seed=base.seed + 1)
    resolver = ArtifactResolver(changed, cache_dir=tmp_path)
    assert resolver.key("evolution") != ArtifactResolver(base).key("evolution")
    resolver.artifact("evolution")
    assert [e.status for e in resolver.events] == ["built"]


def test_cache_keys_cascade_through_dependencies():
    from dataclasses import replace

    base = ArtifactResolver(get_scenario("tiny"))
    changed = ArtifactResolver(replace(get_scenario("tiny"), seed=7))
    # Changing the seed re-keys the root artifact and everything downstream.
    for name in ("evolution", "snapshot_series", "reference_san", "model_san"):
        assert base.key(name) != changed.key(name)


def test_cache_invalidation_on_recipe_version_bump(tmp_path):
    calls = []

    def save(value, path):
        (path / "value.json").write_text(json.dumps(value), encoding="utf-8")

    def load(path):
        return json.loads((path / "value.json").read_text(encoding="utf-8"))

    def builder(resolver):
        calls.append(1)
        return {"value": 42}

    register_artifact("t_versioned", builder, version="1", save=save, load=load)
    try:
        scenario = get_scenario("tiny")
        ArtifactResolver(scenario, cache_dir=tmp_path).artifact("t_versioned")
        ArtifactResolver(scenario, cache_dir=tmp_path).artifact("t_versioned")
        assert len(calls) == 1  # second resolver hit the cache

        register_artifact("t_versioned", builder, version="2", save=save, load=load)
        ArtifactResolver(scenario, cache_dir=tmp_path).artifact("t_versioned")
        assert len(calls) == 2  # version bump re-keyed the entry
    finally:
        unregister_artifact("t_versioned")


def test_warm_columnar_hit_is_mmap_backed_with_sized_marker(
    tiny_pipeline, pipeline_cache
):
    """Warm frozen-graph hits are zero-parse: served as mmap views of the
    cache entry, whose marker records the payload hash and size from write
    time."""
    from repro.graph import is_mmap_backed

    resolver = ArtifactResolver(get_scenario("tiny"), cache_dir=pipeline_cache)
    frozen = resolver.artifact("frozen_reference")
    event = next(e for e in resolver.events if e.name == "frozen_reference")
    assert event.status == "cached"
    assert is_mmap_backed(frozen)
    entry = resolver.store.entry_path("frozen_reference", event.key)
    marker = json.loads((entry / "ARTIFACT.json").read_text(encoding="utf-8"))
    payload_files = [p for p in entry.rglob("*") if p.is_file() and p.name != "ARTIFACT.json"]
    assert marker["payload_bytes"] == sum(p.stat().st_size for p in payload_files) > 0
    assert len(marker["payload_sha256"]) == 64
    assert event.bytes == marker["payload_bytes"]


def test_warm_rerun_recomputes_no_artifact(tiny_pipeline, pipeline_cache):
    warm = run_pipeline("tiny", figures=PARITY_FIGURES, cache_dir=pipeline_cache)
    assert warm.recomputed_persistent_artifacts() == []
    manifest = warm.manifest()
    assert manifest["cache"]["builds"] == 0
    assert manifest["cache"]["hits"] > 0


# ----------------------------------------------------------------------
# Runner output parity with direct figure calls
# ----------------------------------------------------------------------
def test_runner_stage_outputs_match_direct_calls(tiny_pipeline):
    """Byte-identical parity between pipeline stages and direct invocations."""
    resolver = tiny_pipeline.resolver
    scenario = tiny_pipeline.scenario
    direct = {
        "fig02_03": figure2_3_growth(resolver.artifact("snapshots")),
        "sec22": section22_crawl_coverage(resolver.artifact("snapshot_series")),
        "fig05": figure5_degree_distributions(resolver.artifact("frozen_reference")),
        "fig07": figure7_social_jdd(
            resolver.artifact("frozen_reference"), resolver.artifact("frozen_snapshots")
        ),
        "fig10": figure10_attribute_degrees(resolver.artifact("frozen_reference")),
        "fig13": figure13_influence(
            resolver.artifact("halfway_san"), resolver.artifact("reference_san")
        ),
    }
    assert set(direct) == set(PARITY_FIGURES)
    for name, payload in direct.items():
        assert canonical_json(payload) == canonical_json(
            tiny_pipeline.stages[name].payload
        ), f"stage {name} diverges from the direct call"
        assert scenario.stage_options(name) == {}  # parity needs no options here


def test_warm_cache_payloads_match_cold(tiny_pipeline, pipeline_cache):
    """Artifacts loaded from disk must reproduce the cold run byte for byte."""
    warm = run_pipeline("tiny", figures=PARITY_FIGURES, cache_dir=pipeline_cache)
    for name in PARITY_FIGURES:
        assert canonical_json(warm.stages[name].payload) == canonical_json(
            tiny_pipeline.stages[name].payload
        )


def test_parallel_stage_execution_matches_serial(tiny_pipeline, pipeline_cache):
    parallel = run_pipeline(
        "tiny", figures=PARITY_FIGURES, cache_dir=pipeline_cache, jobs=4
    )
    assert set(parallel.stages) == set(tiny_pipeline.stages)
    for name in PARITY_FIGURES:
        assert canonical_json(parallel.stages[name].payload) == canonical_json(
            tiny_pipeline.stages[name].payload
        )


def test_runner_writes_manifest_and_reports(tmp_path, tiny_pipeline, pipeline_cache):
    out = tmp_path / "out"
    result = run_pipeline(
        "tiny", figures=("fig02_03", "sec22"), cache_dir=pipeline_cache, out_dir=out
    )
    manifest = json.loads((out / "manifest.json").read_text(encoding="utf-8"))
    assert manifest["scenario"]["name"] == "tiny"
    assert {stage["name"] for stage in manifest["stages"]} == {"fig02_03", "sec22"}
    for event in manifest["artifacts"]:
        assert event["status"] in ("built", "cached")
        assert len(event["key"]) == 16
    assert (out / "report.txt").read_text(encoding="utf-8") == result.rendered_report()
    for name in ("fig02_03", "sec22"):
        text = (out / f"{name}.txt").read_text(encoding="utf-8")
        assert name in text


def test_stage_timings_are_recorded(tiny_pipeline):
    for stage in tiny_pipeline.stages.values():
        assert stage.seconds >= 0.0
        assert stage.rendered
    assert tiny_pipeline.total_seconds >= tiny_pipeline.artifact_seconds >= 0.0
