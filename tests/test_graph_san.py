"""Unit tests for the SAN container."""

import pytest

from repro.graph import SAN
from repro.graph.errors import InvalidNodeKindError, NodeNotFoundError


def test_add_social_edge_and_neighbors(figure1_san):
    san = figure1_san
    assert san.has_social_edge(1, 2)
    assert san.has_social_edge(2, 1)
    assert not san.has_social_edge(4, 5)
    assert 2 in san.social_out_neighbors(1)
    assert 4 in san.social_in_neighbors(2)
    assert san.social_neighbors(1) == {2, 3}


def test_attribute_neighbors_and_common_attributes(figure1_san):
    san = figure1_san
    assert san.attribute_neighbors(2) == {"employer:Google", "school:UC Berkeley"}
    assert san.common_attributes(1, 2) == {"employer:Google"}
    assert san.common_attributes(1, 4) == set()


def test_social_neighbors_of_attribute_node(figure1_san):
    members = figure1_san.social_neighbors("employer:Google")
    assert members == {1, 2}


def test_social_neighbors_missing_node_raises(figure1_san):
    with pytest.raises(NodeNotFoundError):
        figure1_san.social_neighbors("nonexistent")


def test_degrees(figure1_san):
    san = figure1_san
    assert san.social_out_degree(1) == 2
    assert san.social_in_degree(2) == 3
    assert san.attribute_degree(2) == 2
    assert san.attribute_social_degree("employer:Google") == 2


def test_counts(figure1_san):
    san = figure1_san
    assert san.number_of_social_nodes() == 6
    assert san.number_of_attribute_nodes() == 4 + 0 + 0  # Google, Berkeley, CS, SF
    assert san.number_of_social_edges() == 10
    assert san.number_of_attribute_edges() == 8


def test_node_kind_collision_raises():
    san = SAN()
    san.add_social_node("x")
    with pytest.raises(InvalidNodeKindError):
        san.add_attribute_node("x")
    san.add_attribute_node("attr")
    with pytest.raises(InvalidNodeKindError):
        san.add_social_node("attr")


def test_densities(figure1_san):
    social_density, attribute_density = figure1_san.densities()
    assert social_density == pytest.approx(10 / 6)
    assert attribute_density == pytest.approx(8 / 4)


def test_densities_empty():
    assert SAN().densities() == (0.0, 0.0)


def test_common_social_neighbors(figure1_san):
    # 1 and 4 both neighbor 2 (4 -> 2 and 1 <-> 2).
    assert 2 in figure1_san.common_social_neighbors(1, 4)


def test_social_subgraph_keeps_attributes_of_kept_nodes(figure1_san):
    sub = figure1_san.social_subgraph([1, 2, 3])
    assert sub.number_of_social_nodes() == 3
    assert sub.has_social_edge(1, 2)
    assert not sub.is_social_node(4)
    assert sub.has_attribute_edge(1, "employer:Google")
    assert not sub.is_attribute_node("major:Computer Science")
    assert sub.attribute_info("employer:Google").attr_type == "employer"


def test_copy_independent(figure1_san):
    clone = figure1_san.copy()
    clone.add_social_edge(1, 6)
    assert not figure1_san.has_social_edge(1, 6)
    clone.add_attribute_edge(6, "employer:Google")
    assert figure1_san.attribute_social_degree("employer:Google") == 2


def test_summary_keys(figure1_san):
    summary = figure1_san.summary()
    assert summary["social_nodes"] == 6
    assert summary["attribute_nodes"] == 4
    assert summary["social_edges"] == 10
    assert summary["attribute_edges"] == 8
    assert summary["social_density"] == pytest.approx(10 / 6)


def test_attribute_type_lookup(figure1_san):
    assert figure1_san.attribute_type("city:San Francisco") == "city"
    assert figure1_san.attribute_info("major:Computer Science").value == "Computer Science"


def test_is_social_and_attribute_node(figure1_san):
    assert figure1_san.is_social_node(3)
    assert not figure1_san.is_social_node("employer:Google")
    assert figure1_san.is_attribute_node("employer:Google")
    assert not figure1_san.is_attribute_node(3)
