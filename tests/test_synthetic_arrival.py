"""Tests for the three-phase arrival schedule."""

import pytest

from repro.metrics import PhaseBoundaries
from repro.synthetic import constant_schedule, three_phase_schedule


def test_three_phase_schedule_total_and_length():
    schedule = three_phase_schedule(total_users=5000, num_days=98)
    assert schedule.num_days == 98
    # Rounding keeps the total close to the request.
    assert schedule.total_users == pytest.approx(5000, rel=0.05)
    assert all(arrivals >= 1 for arrivals in schedule.daily_arrivals)


def test_three_phase_shape():
    phases = PhaseBoundaries(phase_one_end=20, phase_two_end=75)
    schedule = three_phase_schedule(total_users=10000, num_days=98, phases=phases)
    daily = schedule.daily_arrivals
    # Phase I ramps up: the end of phase I beats its start.
    assert daily[19] > daily[0]
    # Public release: day 76 jumps well above the phase II level.
    assert daily[75] > daily[74] * 1.5
    # Phase II is roughly flat.
    phase2 = daily[20:75]
    assert max(phase2) <= min(phase2) * 1.5 + 1


def test_arrivals_on_out_of_range():
    schedule = three_phase_schedule(total_users=500, num_days=40,
                                    phases=PhaseBoundaries(10, 30))
    assert schedule.arrivals_on(0) == 0
    assert schedule.arrivals_on(41) == 0
    assert schedule.arrivals_on(1) >= 1


def test_three_phase_validation():
    with pytest.raises(ValueError):
        three_phase_schedule(total_users=10, num_days=98)
    with pytest.raises(ValueError):
        three_phase_schedule(
            total_users=1000, num_days=98, phase_one_share=0.5, phase_two_share=0.5, phase_three_share=0.5
        )


def test_constant_schedule():
    schedule = constant_schedule(100, 7)
    assert schedule.total_users == 100
    assert schedule.num_days == 7
    assert max(schedule.daily_arrivals) - min(schedule.daily_arrivals) <= 1
