"""Tests for link / reciprocity prediction over SAN features."""

import pytest

from repro.applications import (
    ALL_FEATURES,
    LogisticPredictor,
    auc_score,
    build_link_prediction_dataset,
    build_reciprocity_dataset,
    compare_predictors,
    pair_features,
)


def test_pair_features_keys_and_values(figure1_san):
    features = pair_features(figure1_san, 1, 2)
    assert set(features) == set(ALL_FEATURES)
    assert features["common_attributes"] == 1.0
    assert features["common_employer_or_school"] == 1.0
    assert features["reverse_link_exists"] == 1.0
    lonely = pair_features(figure1_san, 1, 6)
    assert lonely["common_attributes"] == 0.0
    assert lonely["common_social_neighbors"] == 0.0


def test_auc_score_perfect_and_random():
    assert auc_score([0.9, 0.8, 0.1, 0.2], [1, 1, 0, 0]) == 1.0
    assert auc_score([0.1, 0.2, 0.9, 0.8], [1, 1, 0, 0]) == 0.0
    assert auc_score([0.5, 0.5], [1, 0]) == 0.5
    assert auc_score([0.3], [1]) == 0.5  # degenerate: no negatives
    with pytest.raises(ValueError):
        auc_score([0.5], [1, 0])


def test_logistic_predictor_learns_separable_data():
    features = [{"x": float(i)} for i in range(20)]
    labels = [0] * 10 + [1] * 10
    predictor = LogisticPredictor(feature_names=("x",), epochs=400, learning_rate=0.3)
    predictor.fit(features, labels)
    scores = [predictor.score(f) for f in features]
    assert auc_score(scores, labels) > 0.95


def test_logistic_predictor_validation():
    predictor = LogisticPredictor(feature_names=("x",))
    with pytest.raises(ValueError):
        predictor.fit([], [])
    with pytest.raises(ValueError):
        predictor.fit([{"x": 1.0}], [1, 0])


def test_build_reciprocity_dataset(tiny_snapshots):
    earlier = tiny_snapshots.halfway()
    later = tiny_snapshots.last()
    dataset = build_reciprocity_dataset(earlier, later, max_pairs=300, rng=1)
    assert len(dataset.features) == len(dataset.labels) == len(dataset.pairs)
    assert len(dataset.labels) > 20
    assert set(dataset.labels) <= {0, 1}
    # Every candidate was one-directional in the earlier snapshot.
    for source, target in dataset.pairs[:50]:
        assert earlier.has_social_edge(source, target)
        assert not earlier.has_social_edge(target, source)


def test_build_link_prediction_dataset(tiny_snapshots):
    earlier = tiny_snapshots.halfway()
    later = tiny_snapshots.last()
    dataset = build_link_prediction_dataset(earlier, later, max_pairs=200, rng=2)
    assert set(dataset.labels) == {0, 1}
    positives = sum(dataset.labels)
    assert positives > 5
    assert len(dataset.labels) - positives > 5


def test_compare_predictors_attributes_help_reciprocity(tiny_snapshots):
    """The structure+attribute predictor should not be worse than structure-only
    (the Section 4.2 implication)."""
    earlier = tiny_snapshots.halfway()
    later = tiny_snapshots.last()
    dataset = build_reciprocity_dataset(earlier, later, max_pairs=600, rng=3)
    results = compare_predictors(dataset, rng=4)
    assert set(results) == {"structure_only", "structure_plus_attributes"}
    # At the test workload's scale the AUC gap is noisy; the attribute-aware
    # predictor must simply not be materially worse.  The benchmark harness
    # makes the quantitative comparison on the full workload.
    assert results["structure_plus_attributes"] >= results["structure_only"] - 0.1
    assert 0.3 <= results["structure_plus_attributes"] <= 1.0
