"""Tests for the attachment models (uniform, PA, PAPA, LAPA)."""

import random
from collections import Counter

import pytest

from repro.graph import san_from_edge_lists
from repro.models import (
    AttachmentParameters,
    LinearAttributePreferentialAttachment,
    PowerAttributePreferentialAttachment,
    PreferentialAttachment,
    UniformAttachment,
    make_attachment_model,
    sample_lapa_target_fast,
    shared_attribute_count,
)


@pytest.fixture
def attachment_san():
    """A SAN with one high-in-degree node (hub) and attribute communities."""
    edges = [(i, 0) for i in range(1, 8)]  # node 0 has in-degree 7
    edges += [(0, 1), (1, 2)]
    attributes = [
        (5, "employer", "G"), (6, "employer", "G"), (7, "employer", "G"),
        (1, "city", "X"), (2, "city", "X"),
    ]
    return san_from_edge_lists(edges, attributes)


def test_uniform_weight_is_constant(attachment_san):
    model = UniformAttachment()
    assert model.weight(attachment_san, 1, 0) == 1.0
    assert model.weight(attachment_san, 1, 5) == 1.0


def test_pa_weight_scales_with_in_degree(attachment_san):
    model = PreferentialAttachment(alpha=1.0, smoothing=1.0)
    assert model.weight(attachment_san, 3, 0) == pytest.approx(8.0)  # in-degree 7 + 1
    assert model.weight(attachment_san, 3, 5) == pytest.approx(1.0)  # in-degree 0 + 1


def test_shared_attribute_count_and_type_weights(attachment_san):
    assert shared_attribute_count(attachment_san, 5, 6) == 1.0
    assert shared_attribute_count(attachment_san, 5, 1) == 0.0
    weighted = shared_attribute_count(
        attachment_san, 5, 6, type_weights={"employer": 3.0}
    )
    assert weighted == 3.0


def test_lapa_weight_combines_degree_and_attributes(attachment_san):
    params = AttachmentParameters(alpha=1.0, beta=10.0)
    model = LinearAttributePreferentialAttachment(params)
    # Target 6 shares the employer with source 5: (0+1) * (1 + 10).
    assert model.weight(attachment_san, 5, 6) == pytest.approx(11.0)
    # Target 0 has in-degree 7 but shares nothing: 8 * 1.
    assert model.weight(attachment_san, 5, 0) == pytest.approx(8.0)


def test_papa_weight(attachment_san):
    params = AttachmentParameters(alpha=1.0, beta=2.0)
    model = PowerAttributePreferentialAttachment(params)
    # shared = 1 -> factor 1 + 1^2 = 2.
    assert model.weight(attachment_san, 5, 6) == pytest.approx(2.0)
    # shared = 0, beta > 0 -> factor 1.
    assert model.weight(attachment_san, 5, 0) == pytest.approx(8.0)
    # beta = 0 reduces to 2 * PA weight.
    flat = PowerAttributePreferentialAttachment(AttachmentParameters(alpha=1.0, beta=0.0))
    assert flat.weight(attachment_san, 5, 0) == pytest.approx(16.0)


def test_make_attachment_model_factory():
    assert isinstance(make_attachment_model(0, 0), UniformAttachment)
    assert isinstance(make_attachment_model(1.0, 0.0), PreferentialAttachment)
    assert isinstance(make_attachment_model(1.0, 5.0, kind="papa"), PowerAttributePreferentialAttachment)
    assert isinstance(make_attachment_model(1.0, 5.0, kind="lapa"), LinearAttributePreferentialAttachment)
    with pytest.raises(ValueError):
        make_attachment_model(1.0, 5.0, kind="bogus")


def test_sample_target_prefers_high_weight(attachment_san):
    model = PreferentialAttachment(alpha=1.0, smoothing=1.0)
    generator = random.Random(5)
    counts = Counter(
        model.sample_target(attachment_san, 3, [0, 5], rng=generator) for _ in range(500)
    )
    assert counts[0] > counts[5] * 3


def test_sample_target_empty_candidates(attachment_san):
    assert UniformAttachment().sample_target(attachment_san, 1, [], rng=1) is None


def test_sample_lapa_target_fast_matches_distribution(attachment_san):
    """The fast decomposed sampler should match the exact LAPA distribution."""
    params = AttachmentParameters(alpha=1.0, beta=50.0, smoothing=1.0)
    exact_model = LinearAttributePreferentialAttachment(params)
    source = 5
    candidates = [node for node in attachment_san.social_nodes() if node != source]
    weights = {c: exact_model.weight(attachment_san, source, c) for c in candidates}
    total = sum(weights.values())
    expected = {c: w / total for c, w in weights.items()}

    generator = random.Random(17)
    counts = Counter()
    draws = 4000
    for _ in range(draws):
        target = sample_lapa_target_fast(attachment_san, source, params, rng=generator)
        counts[target] += 1
    for candidate, probability in expected.items():
        observed = counts[candidate] / draws
        assert observed == pytest.approx(probability, abs=0.04)


def test_sample_lapa_target_fast_excludes_source_and_exclusions(attachment_san):
    params = AttachmentParameters(alpha=1.0, beta=0.0)
    generator = random.Random(3)
    for _ in range(100):
        target = sample_lapa_target_fast(
            attachment_san, 0, params, rng=generator, exclude={1, 2, 3}
        )
        assert target not in (0, 1, 2, 3)


def test_sample_lapa_target_fast_nonunit_alpha_falls_back(attachment_san):
    params = AttachmentParameters(alpha=0.5, beta=5.0)
    target = sample_lapa_target_fast(attachment_san, 5, params, rng=7)
    assert target is not None and target != 5


def test_attachment_parameters_validation():
    with pytest.raises(ValueError):
        AttachmentParameters(alpha=-1.0)
    with pytest.raises(ValueError):
        AttachmentParameters(beta=-0.1)
