"""Tests for the answer-key schema and the ``repro validate`` fidelity gate.

Four contract areas:

* **schema** — answer-key documents round-trip, malformed documents fail
  loudly with named errors, unknown keys list what *is* available;
* **evaluation** — every operator (``in_range`` / ``at_least`` / ``at_most``
  / ``trend`` / ``greater_than``) passes and fails on synthetic payloads,
  and unresolvable metrics fail the assertion instead of raising;
* **checked-in keys** — every scenario preset ships a loadable key whose
  stages are all registered experiment stages;
* **the gate itself** — ``run_validation`` passes the tiny preset, reuses a
  warm cache without rebuilding, fails loudly (with the violated assertion
  named) on an intentionally-wrong key, and the CLI maps pass/violation/
  usage errors to exit codes 0/1/2.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments import (
    ArtifactResolver,
    canonical_json,
    experiment_names,
    get_scenario,
    run_validation,
    scenario_names,
)
from repro.experiments.answer_keys import (
    AnswerKey,
    KeyAssertion,
    MalformedAnswerKeyError,
    UnknownAnswerKeyError,
    answer_key_names,
    default_keys_dir,
    evaluate_answer_key,
    evaluate_assertion,
    load_answer_key,
)

PAYLOADS = {
    "fig04": {
        "reciprocity": [[10, 0.1], [20, 0.2], [30, 0.3]],
        "alpha": {"out": 1.5, "in": 1.2},
    },
    "sec22": {"10": 0.95, "20": 0.94, "30": 0.95},
}


def _assertion(**kwargs):
    defaults = dict(name="a", metric="fig04/alpha.out", op="at_least", low=1.0)
    defaults.update(kwargs)
    return KeyAssertion(**defaults)


# ----------------------------------------------------------------------
# Schema: round-trip and malformed documents
# ----------------------------------------------------------------------
def test_answer_key_round_trip(tmp_path):
    key = AnswerKey(
        scenario="tiny",
        assertions=(
            _assertion(name="alpha", op="in_range", low=1.0, high=2.0),
            _assertion(
                name="rises", metric="fig04/reciprocity", op="trend",
                low=None, direction="increasing", tolerance=0.001,
            ),
        ),
        description="round-trip fixture",
    )
    path = key.save(tmp_path / "tiny.json")
    loaded = AnswerKey.load(path)
    assert loaded == key
    assert loaded.stages() == ["fig04"]


def test_assertion_document_rejects_unknown_fields():
    with pytest.raises(MalformedAnswerKeyError, match="surprise"):
        KeyAssertion.from_document(
            {"name": "a", "metric": "x/y", "op": "at_least", "surprise": 1}
        )


def test_assertion_rejects_unknown_op_and_direction():
    with pytest.raises(MalformedAnswerKeyError):
        _assertion(op="approximately")
    with pytest.raises(MalformedAnswerKeyError):
        _assertion(op="trend", low=None, direction="sideways")


def test_answer_key_rejects_bad_format_and_duplicates():
    document = AnswerKey(scenario="t", assertions=(_assertion(),)).to_document()
    document["format"] = 99
    with pytest.raises(MalformedAnswerKeyError, match="format"):
        AnswerKey.from_document(document)
    with pytest.raises(MalformedAnswerKeyError):
        AnswerKey(scenario="t", assertions=())
    with pytest.raises(MalformedAnswerKeyError, match="duplicate"):
        AnswerKey(scenario="t", assertions=(_assertion(), _assertion()))


def test_answer_key_load_rejects_invalid_json(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(MalformedAnswerKeyError, match="not valid JSON"):
        AnswerKey.load(bad)


def test_unknown_answer_key_lists_available(tmp_path):
    AnswerKey(scenario="real", assertions=(_assertion(),)).save(
        tmp_path / "real.json"
    )
    with pytest.raises(UnknownAnswerKeyError, match="real"):
        load_answer_key("no-such-scenario", keys_dir=tmp_path)


def test_load_answer_key_rejects_scenario_mismatch(tmp_path):
    AnswerKey(scenario="other", assertions=(_assertion(),)).save(
        tmp_path / "tiny.json"
    )
    with pytest.raises(MalformedAnswerKeyError, match="other"):
        load_answer_key("tiny", keys_dir=tmp_path)


# ----------------------------------------------------------------------
# Evaluation semantics
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs, passes",
    [
        (dict(op="in_range", low=1.0, high=2.0), True),
        (dict(op="in_range", low=1.6, high=2.0), False),
        (dict(op="at_least", low=1.5), True),
        (dict(op="at_least", low=1.51), False),
        (dict(op="at_most", low=None, high=1.5), True),
        (dict(op="at_most", low=None, high=1.49), False),
        (
            dict(metric="fig04/alpha.out", op="greater_than", low=None,
                 other="fig04/alpha.in", margin=0.2),
            True,
        ),
        (
            dict(metric="fig04/alpha.out", op="greater_than", low=None,
                 other="fig04/alpha.in", margin=0.5),
            False,
        ),
        (
            dict(metric="fig04/reciprocity", op="trend", low=None,
                 direction="increasing", tolerance=0.001),
            True,
        ),
        (
            dict(metric="fig04/reciprocity", op="trend", low=None,
                 direction="decreasing", tolerance=0.001),
            False,
        ),
        (
            dict(metric="sec22/", op="trend", low=None,
                 direction="flat", tolerance=0.005),
            True,
        ),
    ],
)
def test_operator_semantics(kwargs, passes):
    result = evaluate_assertion(_assertion(**kwargs), PAYLOADS)
    assert result.passed is passes, result.detail


def test_unresolvable_metric_fails_without_raising():
    missing_stage = evaluate_assertion(
        _assertion(metric="fig99/anything"), PAYLOADS
    )
    missing_path = evaluate_assertion(
        _assertion(metric="fig04/alpha.sideways"), PAYLOADS
    )
    for result in (missing_stage, missing_path):
        assert not result.passed
        assert result.observed is None
        assert "unresolvable" in result.detail


def test_evaluate_answer_key_keeps_assertion_order():
    key = AnswerKey(
        scenario="t",
        assertions=(
            _assertion(name="first"),
            _assertion(name="second", metric="fig99/gone"),
        ),
    )
    results = evaluate_answer_key(key, PAYLOADS)
    assert [r.assertion.name for r in results] == ["first", "second"]
    assert [r.passed for r in results] == [True, False]


# ----------------------------------------------------------------------
# Checked-in keys
# ----------------------------------------------------------------------
def test_every_validated_preset_has_a_checked_in_key():
    validated = {
        name for name in scenario_names() if get_scenario(name).validated
    }
    assert set(answer_key_names()) == validated
    # Only regimes too large to calibrate a key against may opt out.
    assert set(scenario_names()) - validated == {"huge"}


@pytest.mark.parametrize("name", ["tiny", "sybil-waves", "churn", "flash-crowd",
                                  "privacy-heavy", "paper-default", "large",
                                  "small", "sparse", "dense", "high-reciprocity"])
def test_checked_in_key_is_well_formed(name):
    key = load_answer_key(name)
    assert key.scenario == name
    assert key.assertions
    registered = set(experiment_names())
    for stage in key.stages():
        assert stage in registered, f"key {name} references unknown stage {stage}"
    # The adversarial regimes must assert their defining signal.
    names = {assertion.name for assertion in key.assertions}
    if name == "sybil-waves":
        assert "ranking-separates" in names
    if name == "churn":
        assert "attribute-churn-present" in names
    if name == "flash-crowd":
        assert "arrival-burst" in names
    if name == "privacy-heavy":
        assert "social-coverage-dented" in names


def test_default_keys_dir_is_the_checked_in_tree():
    assert (default_keys_dir() / "tiny.json").is_file()


# ----------------------------------------------------------------------
# The gate: run_validation and the CLI
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def validation_cache(tmp_path_factory):
    return tmp_path_factory.mktemp("validation-cache")


@pytest.fixture(scope="module")
def tiny_validation(validation_cache):
    return run_validation("tiny", cache_dir=validation_cache)


def test_tiny_preset_passes_its_key(tiny_validation):
    assert tiny_validation.passed
    assert tiny_validation.failures() == []
    assert tiny_validation.key_path == default_keys_dir() / "tiny.json"
    report = tiny_validation.rendered()
    assert "PASS" in report and "FAIL" not in report


def test_warm_validation_rebuilds_nothing(tiny_validation, validation_cache):
    warm = run_validation("tiny", cache_dir=validation_cache)
    assert warm.passed
    cache = warm.pipeline.manifest()["cache"]
    assert cache["builds"] == 0
    assert cache["hits"] > 0


def test_validation_manifest_shape(tiny_validation, tmp_path):
    out = tmp_path / "out"
    from repro.experiments import write_validation_outputs

    write_validation_outputs(tiny_validation, out)
    manifest = json.loads((out / "validation.json").read_text(encoding="utf-8"))
    assert manifest["scenario"]["name"] == "tiny"
    assert manifest["passed"] is True
    assert manifest["stages"] == tiny_validation.key.stages()
    assert {a["name"] for a in manifest["assertions"]} == {
        a.name for a in tiny_validation.key.assertions
    }
    assert "builds" in manifest["cache"]
    assert (out / "validation.txt").read_text(encoding="utf-8").rstrip().endswith(
        "views"
    )


def test_intentional_violation_fails_loudly(validation_cache):
    """The regression-gate demonstration: a wrong key names its violation."""
    wrong = AnswerKey(
        scenario="tiny",
        assertions=(
            KeyAssertion(
                name="impossible-reciprocity",
                metric="fig04/reciprocity",
                op="trend",
                direction="decreasing",
                tolerance=0.0,
            ),
            KeyAssertion(
                name="coverage-sane",
                metric="fidelity/crawl.social_coverage",
                op="at_least",
                low=0.5,
            ),
        ),
    )
    result = run_validation("tiny", key=wrong, cache_dir=validation_cache)
    assert not result.passed
    assert [f.assertion.name for f in result.failures()] == [
        "impossible-reciprocity"
    ]
    assert any(
        a["name"] == "impossible-reciprocity" and a["passed"] is False
        for a in result.manifest()["assertions"]
    )
    assert "FAIL impossible-reciprocity" in result.rendered()


def test_cli_validate_passes_and_writes_outputs(
    validation_cache, tmp_path, capsys
):
    exit_code = main(
        [
            "validate", "--scenario", "tiny",
            "--cache-dir", str(validation_cache),
            "--out", str(tmp_path / "v"),
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "validate scenario=tiny" in output
    assert "0 built" in output  # warm cache: the gate rebuilds nothing
    assert (tmp_path / "v" / "validation.json").is_file()


def test_cli_validate_violation_exits_one(validation_cache, tmp_path, capsys):
    keys_dir = tmp_path / "keys"
    AnswerKey(
        scenario="tiny",
        assertions=(
            KeyAssertion(
                name="absurd-coverage",
                metric="fidelity/crawl.social_coverage",
                op="at_least",
                low=2.0,
            ),
        ),
    ).save(keys_dir / "tiny.json")
    exit_code = main(
        [
            "validate", "--scenario", "tiny",
            "--keys-dir", str(keys_dir),
            "--cache-dir", str(validation_cache),
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "FAIL absurd-coverage" in captured.out
    assert "absurd-coverage" in captured.err  # the violation is named on stderr


def test_cli_validate_usage_errors(tmp_path, capsys):
    assert main(["validate"]) == 2
    assert "--scenario" in capsys.readouterr().err
    assert main(["validate", "--scenario", "galactic"]) == 2
    assert "galactic" in capsys.readouterr().err
    missing = tmp_path / "empty-keys"
    missing.mkdir()
    assert (
        main(["validate", "--scenario", "tiny", "--keys-dir", str(missing)]) == 2
    )
    assert "tiny" in capsys.readouterr().err


def test_cli_validate_list_names_every_key(capsys):
    assert main(["validate", "--list"]) == 0
    output = capsys.readouterr().out
    for name in scenario_names():
        if get_scenario(name).validated:
            assert name in output


# ----------------------------------------------------------------------
# Seed determinism across every preset
# ----------------------------------------------------------------------
def test_cache_tokens_are_deterministic():
    for name in scenario_names():
        first = canonical_json(get_scenario(name).cache_token())
        second = canonical_json(get_scenario(name).cache_token())
        assert first == second, f"scenario {name} has an unstable cache token"


@pytest.mark.parametrize(
    "name", ["tiny", "sybil-waves", "churn", "flash-crowd", "privacy-heavy"]
)
def test_evolution_artifact_is_byte_identical_across_builds(name, tmp_path):
    """Two cold builds of the root artifact must serialize identically."""
    payloads = []
    for attempt in ("first", "second"):
        cache = tmp_path / attempt
        ArtifactResolver(get_scenario(name), cache_dir=cache).artifact("evolution")
        files = sorted(cache.glob("**/evolution.json"))
        assert len(files) == 1
        payloads.append(files[0].read_bytes())
    assert payloads[0] == payloads[1], f"scenario {name} evolution is unstable"


def test_unknown_scenario_error_lists_presets():
    from repro.experiments import UnknownScenarioError

    with pytest.raises(UnknownScenarioError) as excinfo:
        get_scenario("not-a-preset")
    message = str(excinfo.value)
    for name in ("tiny", "sybil-waves", "churn", "flash-crowd", "privacy-heavy"):
        assert name in message
