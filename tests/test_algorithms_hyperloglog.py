"""Tests for the HyperLogLog counter."""

import pytest

from repro.algorithms import HyperLogLog


def test_precision_validation():
    with pytest.raises(ValueError):
        HyperLogLog(precision=2)
    with pytest.raises(ValueError):
        HyperLogLog(precision=20)


def test_empty_counter_estimates_zero():
    counter = HyperLogLog(precision=7)
    assert counter.cardinality() == pytest.approx(0.0, abs=1e-9)
    assert len(counter) == 0


def test_small_cardinality_is_close():
    counter = HyperLogLog(precision=10)
    for item in range(50):
        counter.add(item)
    assert abs(len(counter) - 50) <= 5


def test_large_cardinality_within_error_bound():
    counter = HyperLogLog(precision=11)
    n = 20000
    counter.update(range(n))
    relative_error = abs(counter.cardinality() - n) / n
    # Standard error is ~1.04/sqrt(2048) ~= 2.3%; allow 4 sigma.
    assert relative_error < 0.1


def test_duplicates_do_not_increase_estimate():
    counter = HyperLogLog(precision=9)
    for _ in range(10):
        counter.update(range(100))
    assert abs(len(counter) - 100) <= 15


def test_union_update_matches_combined_set():
    first = HyperLogLog(precision=10)
    second = HyperLogLog(precision=10)
    first.update(range(0, 1000))
    second.update(range(500, 1500))
    changed = first.union_update(second)
    assert changed
    relative_error = abs(first.cardinality() - 1500) / 1500
    assert relative_error < 0.1


def test_union_update_no_change_when_subset():
    first = HyperLogLog(precision=8)
    second = HyperLogLog(precision=8)
    first.update(range(100))
    second.update(range(50))
    first.union_update(second)  # may or may not change registers
    snapshot = list(first.registers)
    assert first.union_update(second) is False
    assert first.registers == snapshot


def test_union_requires_same_precision():
    with pytest.raises(ValueError):
        HyperLogLog(precision=8).union_update(HyperLogLog(precision=9))


def test_copy_is_independent():
    counter = HyperLogLog(precision=8)
    counter.update(range(100))
    clone = counter.copy()
    clone.update(range(100, 200))
    assert clone.cardinality() > counter.cardinality()


def test_salt_changes_hash_stream_but_not_estimate_much():
    a = HyperLogLog(precision=10, salt=0)
    b = HyperLogLog(precision=10, salt=1)
    a.update(range(1000))
    b.update(range(1000))
    assert a.registers != b.registers
    assert abs(a.cardinality() - b.cardinality()) / 1000 < 0.15
