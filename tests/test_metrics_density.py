"""Tests for density metrics."""

import pytest

from repro.graph import SAN, san_from_edge_lists
from repro.metrics import (
    attribute_declaration_fraction,
    attribute_density,
    graph_theoretic_social_density,
    social_density,
)


def test_social_density(figure1_san):
    assert social_density(figure1_san) == pytest.approx(10 / 6)


def test_attribute_density(figure1_san):
    assert attribute_density(figure1_san) == pytest.approx(8 / 4)


def test_densities_empty():
    assert social_density(SAN()) == 0.0
    assert attribute_density(SAN()) == 0.0
    assert graph_theoretic_social_density(SAN()) == 0.0


def test_graph_theoretic_density(clique_san):
    assert graph_theoretic_social_density(clique_san) == pytest.approx(1.0)


def test_graph_theoretic_density_single_node():
    san = SAN()
    san.add_social_node(1)
    assert graph_theoretic_social_density(san) == 0.0


def test_attribute_declaration_fraction(figure1_san):
    # All six social nodes declare at least one attribute in the fixture.
    assert attribute_declaration_fraction(figure1_san) == pytest.approx(1.0)
    san = san_from_edge_lists([(1, 2), (2, 3)], [(1, "city", "SF")])
    assert attribute_declaration_fraction(san) == pytest.approx(1 / 3)
    assert attribute_declaration_fraction(SAN()) == 0.0
