"""Tests for the SybilLimit-based Sybil-defense experiment."""



from repro.algorithms import capped_undirected_adjacency
from repro.applications import (
    SybilLimitParameters,
    acceptance_probability,
    count_attack_edges,
    sybil_identities_vs_compromised,
)


def test_parameters_defaults():
    params = SybilLimitParameters()
    assert params.walk_length == 10
    assert params.degree_bound == 100
    assert params.sybil_bound_per_edge == 10.0
    custom = SybilLimitParameters(sybils_per_attack_edge=25.0)
    assert custom.sybil_bound_per_edge == 25.0


def test_count_attack_edges_clique(clique_san):
    adjacency = capped_undirected_adjacency(clique_san.social)
    compromised = {0, 1}
    # Each compromised node has 4 honest neighbors.
    assert count_attack_edges(adjacency, compromised) == 8
    assert count_attack_edges(adjacency, set()) == 0


def test_sybil_identities_scale_with_compromised_nodes(tiny_final_san):
    results = sybil_identities_vs_compromised(
        tiny_final_san, [0, 10, 40], rng=3
    )
    assert [r.num_compromised for r in results] == [0, 10, 40]
    assert results[0].num_sybil_identities == 0
    assert results[1].num_sybil_identities > 0
    assert results[2].num_sybil_identities > results[1].num_sybil_identities
    # Sybil identities = attack edges * w.
    for result in results:
        assert result.num_sybil_identities == result.num_attack_edges * 10


def test_sybil_compromised_count_capped_at_population(figure1_san):
    results = sybil_identities_vs_compromised(figure1_san, [100], rng=1)
    assert results[0].num_compromised == figure1_san.number_of_social_nodes()


def test_degree_bound_limits_attack_edges(tiny_final_san):
    unlimited = sybil_identities_vs_compromised(
        tiny_final_san, [30], params=SybilLimitParameters(degree_bound=10 ** 6), rng=7
    )[0]
    bounded = sybil_identities_vs_compromised(
        tiny_final_san, [30], params=SybilLimitParameters(degree_bound=5), rng=7
    )[0]
    assert bounded.num_attack_edges <= unlimited.num_attack_edges


def test_acceptance_probability_honest_nodes(clique_san):
    probability = acceptance_probability(
        clique_san, 0, 3, params=SybilLimitParameters(walk_length=3), num_routes=50, rng=5
    )
    # In a well-connected honest region the tails intersect nearly always.
    assert probability > 0.5


def test_acceptance_probability_disconnected_nodes():
    from repro.graph import san_from_edge_lists

    san = san_from_edge_lists([(1, 2), (2, 1), (3, 4), (4, 3)])
    probability = acceptance_probability(
        san, 1, 3, params=SybilLimitParameters(walk_length=4), num_routes=30, rng=6
    )
    assert probability == 0.0
