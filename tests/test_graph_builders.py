"""Unit tests for SAN construction helpers."""


from repro.graph import (
    attribute_node_id,
    complete_seed_san,
    merge_sans,
    relabel_social_nodes,
    san_from_edge_lists,
    san_from_profiles,
)
from repro.graph.builders import directed_graph_edges_from_undirected


def test_attribute_node_id_format():
    assert attribute_node_id("employer", "Google") == "employer:Google"


def test_san_from_edge_lists():
    san = san_from_edge_lists(
        [(1, 2), (2, 3)], [(1, "city", "SF"), (3, "city", "SF")]
    )
    assert san.number_of_social_nodes() == 3
    assert san.number_of_social_edges() == 2
    assert san.attribute_social_degree("city:SF") == 2
    assert san.attribute_type("city:SF") == "city"


def test_san_from_profiles_includes_isolated_users():
    san = san_from_profiles(
        [(1, 2)],
        {
            1: {"employer": ["Google"]},
            3: {"school": ["MIT", "Stanford"]},
        },
    )
    assert san.is_social_node(3)
    assert san.attribute_degree(3) == 2
    assert san.attribute_degree(1) == 1
    assert san.attribute_degree(2) == 0


def test_complete_seed_san_structure():
    seed = complete_seed_san(num_social=4, num_attributes=3)
    assert seed.number_of_social_nodes() == 4
    assert seed.number_of_attribute_nodes() == 3
    # Complete directed graph: n*(n-1) social links; every node holds every attribute.
    assert seed.number_of_social_edges() == 4 * 3
    assert seed.number_of_attribute_edges() == 4 * 3
    for node in seed.social_nodes():
        assert seed.attribute_degree(node) == 3


def test_directed_edges_from_undirected():
    edges = list(directed_graph_edges_from_undirected([(1, 2), (3, 4)]))
    assert (1, 2) in edges and (2, 1) in edges
    assert (3, 4) in edges and (4, 3) in edges
    assert len(edges) == 4


def test_merge_sans_unions_nodes_and_edges(figure1_san):
    other = san_from_edge_lists([(10, 11)], [(10, "employer", "Google")])
    merged = merge_sans(figure1_san, other)
    assert merged.has_social_edge(10, 11)
    assert merged.has_social_edge(1, 2)
    # The shared attribute node gains a new member.
    assert merged.attribute_social_degree("employer:Google") == 3
    # Inputs untouched.
    assert not figure1_san.is_social_node(10)
    assert other.attribute_social_degree("employer:Google") == 1


def test_relabel_social_nodes(figure1_san):
    relabeled = relabel_social_nodes(figure1_san, {1: 100, 2: 200})
    assert relabeled.has_social_edge(100, 200)
    assert relabeled.has_social_edge(200, 100)
    assert not relabeled.is_social_node(1)
    assert relabeled.has_attribute_edge(100, "employer:Google")
    assert relabeled.number_of_social_edges() == figure1_san.number_of_social_edges()
