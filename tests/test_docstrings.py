"""Doctest audit: public-API docstring examples must actually run.

The graph and metrics layers carry runnable examples in their module and
class docstrings (including the ``freeze()`` entry points and the frozen
kernel dispatch).  This test executes them all so a stale example fails CI
instead of misleading a reader.
"""

from __future__ import annotations

import doctest

import pytest

import repro.algorithms.clustering
import repro.algorithms.triangles
import repro.engine.registry
import repro.graph.bipartite
import repro.graph.digraph
import repro.graph.frozen
import repro.graph.protocol
import repro.graph.san
import repro.graph.serialization
import repro.metrics.attribute_metrics
import repro.metrics.degrees
import repro.metrics.joint_degree
import repro.metrics.reciprocity

AUDITED_MODULES = [
    repro.graph.digraph,
    repro.graph.san,
    repro.graph.bipartite,
    repro.graph.frozen,
    repro.graph.protocol,
    repro.graph.serialization,
    repro.metrics.degrees,
    repro.metrics.reciprocity,
    repro.metrics.joint_degree,
    repro.metrics.attribute_metrics,
    repro.algorithms.clustering,
    repro.algorithms.triangles,
    repro.engine.registry,
]


@pytest.mark.parametrize(
    "module", AUDITED_MODULES, ids=lambda module: module.__name__
)
def test_docstring_examples_run(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"


def test_audited_modules_have_examples():
    # The hot-path modules must keep at least one runnable example each.
    documented = 0
    for module in AUDITED_MODULES:
        finder = doctest.DocTestFinder(exclude_empty=True)
        if any(test.examples for test in finder.find(module)):
            documented += 1
    assert documented >= 8
