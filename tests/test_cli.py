"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import load_san_tsv, save_san_tsv


def test_simulate_writes_tsv_pair(tmp_path, capsys):
    prefix = tmp_path / "gplus"
    exit_code = main(
        [
            "simulate",
            "--users", "150",
            "--days", "20",
            "--phase-one-end", "5",
            "--phase-two-end", "15",
            "--seed", "3",
            "--out-prefix", str(prefix),
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "crawled day 20" in output
    san = load_san_tsv(f"{prefix}.social.tsv", f"{prefix}.attrs.tsv")
    assert san.number_of_social_nodes() > 50
    assert san.number_of_social_edges() > 0


def test_simulate_rejects_out_of_range_day(tmp_path, capsys):
    exit_code = main(
        [
            "simulate",
            "--users", "120",
            "--days", "10",
            "--phase-one-end", "3",
            "--phase-two-end", "7",
            "--day", "99",
            "--out-prefix", str(tmp_path / "x"),
        ]
    )
    assert exit_code == 2
    assert "--day must be" in capsys.readouterr().err


def test_measure_prints_report(tmp_path, capsys, figure1_san):
    social = tmp_path / "social.tsv"
    attrs = tmp_path / "attrs.tsv"
    save_san_tsv(figure1_san, social, attrs)
    exit_code = main(
        ["measure", "--social", str(social), "--attributes", str(attrs), "--no-diameter"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "reciprocity" in output
    assert "social_nodes" in output
    assert "social_effective_diameter" not in output


def test_estimate_prints_parameters(tmp_path, capsys, tiny_final_san):
    social = tmp_path / "social.tsv"
    attrs = tmp_path / "attrs.tsv"
    save_san_tsv(tiny_final_san, social, attrs)
    exit_code = main(["estimate", "--social", str(social), "--attributes", str(attrs)])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "new_attribute_probability" in output
    assert "lifetime.mu" in output


def test_generate_default_parameters(tmp_path, capsys):
    prefix = tmp_path / "synthetic"
    exit_code = main(
        ["generate", "--steps", "150", "--seed", "9", "--out-prefix", str(prefix)]
    )
    assert exit_code == 0
    san = load_san_tsv(f"{prefix}.social.tsv", f"{prefix}.attrs.tsv")
    assert san.number_of_social_nodes() == 155  # 150 steps + 5 seed nodes
    assert san.number_of_attribute_edges() > 0


def test_generate_with_reference_and_ablations(tmp_path, capsys, tiny_final_san):
    social = tmp_path / "ref.social.tsv"
    attrs = tmp_path / "ref.attrs.tsv"
    save_san_tsv(tiny_final_san, social, attrs)
    prefix = tmp_path / "fitted"
    exit_code = main(
        [
            "generate",
            "--steps", "120",
            "--reference-social", str(social),
            "--reference-attributes", str(attrs),
            "--no-lapa",
            "--no-focal-closure",
            "--out-prefix", str(prefix),
        ]
    )
    assert exit_code == 0
    san = load_san_tsv(f"{prefix}.social.tsv", f"{prefix}.attrs.tsv")
    assert san.number_of_social_nodes() == 125


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_report_runs_frozen_battery(tmp_path, capsys, figure1_san):
    social = tmp_path / "social.tsv"
    attrs = tmp_path / "attrs.tsv"
    save_san_tsv(figure1_san, social, attrs)
    out_file = tmp_path / "report.txt"
    exit_code = main(
        [
            "report",
            "--social", str(social),
            "--attributes", str(attrs),
            "--no-diameter",
            "--out", str(out_file),
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "frozen once" in output
    for key in ("reciprocity", "exact_social_clustering", "triangles", "wcc_count"):
        assert key in output
    assert out_file.read_text().strip() in output


def test_help_documents_frozen_and_report(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    output = capsys.readouterr().out
    assert "report" in output
    assert "pipeline" in output
    with pytest.raises(SystemExit):
        main(["pipeline", "--help"])
    output = capsys.readouterr().out
    for flag in ("--scenario", "--figures", "--jobs", "--cache-dir", "--out"):
        assert flag in output
    with pytest.raises(SystemExit):
        main(["measure", "--help"])
    assert "--frozen" in capsys.readouterr().out
    with pytest.raises(SystemExit):
        main(["report", "--help"])
    assert "freeze the SAN once" in capsys.readouterr().out


def test_generate_vectorized_engine(tmp_path, capsys):
    prefix = tmp_path / "fast"
    exit_code = main(
        [
            "generate",
            "--steps", "150",
            "--seed", "9",
            "--engine", "vectorized",
            "--out-prefix", str(prefix),
        ]
    )
    assert exit_code == 0
    assert "generated" in capsys.readouterr().out
    san = load_san_tsv(f"{prefix}.social.tsv", f"{prefix}.attrs.tsv")
    assert san.number_of_social_nodes() == 155  # 150 steps + 5 seed nodes
    assert san.number_of_attribute_edges() > 0


def test_generate_engines_agree_on_node_count(tmp_path, capsys):
    sizes = {}
    for engine in ("loop", "vectorized"):
        prefix = tmp_path / engine
        assert main(
            [
                "generate",
                "--steps", "80",
                "--seed", "4",
                "--engine", engine,
                "--out-prefix", str(prefix),
            ]
        ) == 0
        san = load_san_tsv(f"{prefix}.social.tsv", f"{prefix}.attrs.tsv")
        sizes[engine] = san.number_of_social_nodes()
    assert sizes["loop"] == sizes["vectorized"] == 85


def test_likelihood_from_generated_history(tmp_path, capsys):
    out = tmp_path / "sweep.json"
    exit_code = main(
        [
            "likelihood",
            "--steps", "300",
            "--max-links", "200",
            "--alphas", "0,1",
            "--papa-betas", "0,2",
            "--lapa-betas", "0,100",
            "--out", str(out),
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Figure 15 attachment-model sweep" in output
    assert "links scored=" in output
    import json

    payload = json.loads(out.read_text())
    assert payload["num_links_scored"] > 0
    assert "1,100" in payload["lapa"]


def test_likelihood_engines_agree_via_cli(capsys):
    outputs = {}
    for engine in ("loop", "vectorized"):
        assert main(
            [
                "likelihood",
                "--steps", "250",
                "--max-links", "150",
                "--engine", engine,
                "--alphas", "0,1",
                "--papa-betas", "0",
                "--lapa-betas", "0,100",
            ]
        ) == 0
        out = capsys.readouterr().out
        # Drop the header line naming the engine; the numbers must match.
        outputs[engine] = out.split("\n", 2)[2]
    assert outputs["loop"] == outputs["vectorized"]


def test_likelihood_from_snapshot_pair(tmp_path, capsys, tiny_snapshots):
    earlier = tiny_snapshots.halfway()
    later = tiny_snapshots.last()
    paths = {}
    for name, san in (("before", earlier), ("after", later)):
        social = tmp_path / f"{name}.social.tsv"
        attrs = tmp_path / f"{name}.attrs.tsv"
        save_san_tsv(san, social, attrs)
        paths[name] = (social, attrs)
    exit_code = main(
        [
            "likelihood",
            "--before-social", str(paths["before"][0]),
            "--before-attributes", str(paths["before"][1]),
            "--after-social", str(paths["after"][0]),
            "--after-attributes", str(paths["after"][1]),
            "--max-links", "300",
            "--alphas", "1",
            "--papa-betas", "0",
            "--lapa-betas", "0,100",
        ]
    )
    assert exit_code == 0
    assert "snapshot diff" in capsys.readouterr().out


def test_likelihood_requires_inputs(capsys):
    exit_code = main(["likelihood"])
    assert exit_code == 2
    assert "--steps or all four snapshot TSVs" in capsys.readouterr().err


def test_pipeline_runs_selected_stages(tmp_path, capsys):
    cache = tmp_path / "cache"
    out = tmp_path / "out"
    exit_code = main(
        [
            "pipeline",
            "--scenario", "tiny",
            "--figures", "fig02_03,sec22",
            "--cache-dir", str(cache),
            "--out", str(out),
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "scenario=tiny" in output
    assert "fig02_03" in output and "sec22" in output
    import json

    manifest = json.loads((out / "manifest.json").read_text())
    assert {stage["name"] for stage in manifest["stages"]} == {"fig02_03", "sec22"}
    assert (out / "fig02_03.txt").exists() and (out / "report.txt").exists()

    # Warm rerun against the same cache: no persistent artifact is rebuilt.
    assert main(
        [
            "pipeline",
            "--scenario", "tiny",
            "--figures", "fig02_03,sec22",
            "--cache-dir", str(cache),
            "--out", str(out),
        ]
    ) == 0
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["cache"]["builds"] == 0
    assert manifest["cache"]["hits"] > 0


def test_pipeline_rejects_unknown_scenario_and_stage(capsys):
    assert main(["pipeline", "--scenario", "galactic"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
    assert main(["pipeline", "--scenario", "tiny", "--figures", "fig99"]) == 2
    assert "unknown experiment stage" in capsys.readouterr().err


def test_pipeline_list_scenarios_and_stages(capsys):
    assert main(["pipeline", "--list"]) == 0
    output = capsys.readouterr().out
    for name in ("paper-default", "tiny", "sparse", "dense", "high-reciprocity"):
        assert name in output
    assert "fig15" in output and "arrival_history" in output


def test_likelihood_rejects_steps_with_snapshots(tmp_path, capsys):
    exit_code = main(
        [
            "likelihood",
            "--steps", "100",
            "--before-social", str(tmp_path / "a.tsv"),
            "--before-attributes", str(tmp_path / "b.tsv"),
            "--after-social", str(tmp_path / "c.tsv"),
            "--after-attributes", str(tmp_path / "d.tsv"),
        ]
    )
    assert exit_code == 2
    assert "mutually exclusive" in capsys.readouterr().err


# ----------------------------------------------------------------------
# convert
# ----------------------------------------------------------------------
def test_convert_tsv_to_columnar_with_verify(tmp_path, capsys, figure1_san):
    social, attrs = tmp_path / "social.tsv", tmp_path / "attrs.tsv"
    save_san_tsv(figure1_san, social, attrs)
    out = tmp_path / "san.col"
    exit_code = main(
        [
            "convert",
            "--social", str(social),
            "--attributes", str(attrs),
            "--out", str(out),
            "--verify",
        ]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert f"wrote {out}" in output
    assert "verified" in output
    from repro.graph import open_columnar

    san = open_columnar(out)
    assert san.number_of_social_edges() == figure1_san.number_of_social_edges()


def test_convert_info_prints_header_summary(tmp_path, capsys, figure1_san):
    from repro.graph import save_columnar

    path = tmp_path / "san.col"
    save_columnar(figure1_san, path)
    assert main(["convert", "--info", str(path)]) == 0
    output = capsys.readouterr().out
    assert "columnar v1 kind=san" in output
    assert "social_out_indptr" in output
    assert "social_edges=10" in output


def test_convert_requires_a_source_and_an_output(tmp_path, capsys):
    assert main(["convert", "--out", str(tmp_path / "x.col")]) == 2
    assert "--social/--attributes" in capsys.readouterr().err
    assert main(["convert", "--social", "a.tsv", "--attributes", "b.tsv"]) == 2
    assert "--out" in capsys.readouterr().err


def test_convert_rejects_mixed_sources(tmp_path, capsys):
    exit_code = main(
        [
            "convert",
            "--json", str(tmp_path / "san.json"),
            "--social", str(tmp_path / "social.tsv"),
            "--attributes", str(tmp_path / "attrs.tsv"),
            "--out", str(tmp_path / "x.col"),
        ]
    )
    assert exit_code == 2
    assert "mutually exclusive" in capsys.readouterr().err
