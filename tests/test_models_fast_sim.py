"""Tests for the vectorized generative engine (fast_sim) and engine routing.

The distributional-parity gate lives here: the loop and vectorized engines
share no random stream, so equality between them is checked with two-sample
KS tests on the out-degree and attribute-degree distributions at matched
parameters — the acceptance criterion for the vectorized engine being a
faithful Algorithm 1 implementation.
"""

import math

import numpy as np
import pytest

from repro.engine import NoKernelError, kernels_for, select
from repro.graph.frozen import FrozenSAN
from repro.metrics import (
    attribute_degrees_of_social_nodes,
    global_reciprocity,
    social_out_degrees,
)
from repro.models import (
    FlashCrowd,
    LOOP_ENGINE,
    SybilWave,
    SAN_GENERATE_OP,
    VECTORIZED_ENGINE,
    FastSANModelRun,
    SANModelParameters,
    SANModelRun,
    generate_san,
    generate_san_fast,
    san_generate,
)
from repro.models.parameters import AttachmentParameters
from repro.utils import ks_two_sample_threshold, two_sample_ks_statistic

PARITY_STEPS = 2000
PARITY_SEED = 11


@pytest.fixture(scope="module")
def parity_params():
    return SANModelParameters(steps=PARITY_STEPS)


@pytest.fixture(scope="module")
def fast_run(parity_params):
    return generate_san_fast(parity_params, rng=PARITY_SEED, snapshot_every=500)


@pytest.fixture(scope="module")
def loop_run(parity_params):
    return generate_san(
        parity_params, rng=PARITY_SEED, record_history=False, snapshot_every=500
    )


# ----------------------------------------------------------------------
# Basic structure
# ----------------------------------------------------------------------
def test_fast_run_produces_expected_node_count(fast_run, parity_params):
    expected = parity_params.seed_social_nodes + PARITY_STEPS
    assert fast_run.num_social_nodes == expected
    assert fast_run.san.number_of_social_nodes() == expected


def test_fast_run_final_is_frozen_and_consistent(fast_run):
    frozen = fast_run.san
    assert isinstance(frozen, FrozenSAN)
    assert frozen.summary() == fast_run.summary()
    # to_san rebuilds the identical network on the mutable backend.
    assert fast_run.to_san().summary() == fast_run.summary()


def test_fast_run_tsv_round_trip_preserves_attributes(fast_run, tmp_path):
    """Serialized model attributes must stay distinct (value != None)."""
    from repro.graph import load_san_tsv, save_san_tsv

    social = tmp_path / "fast.social.tsv"
    attrs = tmp_path / "fast.attrs.tsv"
    save_san_tsv(fast_run.san, social, attrs)
    loaded = load_san_tsv(social, attrs)
    assert loaded.number_of_attribute_nodes() == fast_run.san.number_of_attribute_nodes()
    assert loaded.number_of_attribute_edges() == fast_run.san.number_of_attribute_edges()


def test_fast_run_no_self_loops_or_duplicates(fast_run):
    src = fast_run.social_src
    dst = fast_run.social_dst
    assert not np.any(src == dst)
    keys = src * fast_run.num_social_nodes + dst
    assert np.unique(keys).size == keys.size


def test_fast_run_reciprocity_in_expected_range(fast_run, parity_params):
    reciprocity = global_reciprocity(fast_run.san)
    rate = parity_params.reciprocation_probability
    # A per-link rate r yields link reciprocity around 2r / (1 + r).
    assert abs(reciprocity - 2 * rate / (1 + rate)) < 0.15


# ----------------------------------------------------------------------
# Delta snapshots
# ----------------------------------------------------------------------
def test_snapshot_marks_and_materialization(fast_run):
    steps = [mark.step for mark in fast_run.marks]
    assert steps == [500, 1000, 1500, 2000]
    sizes = [mark.num_social_edges for mark in fast_run.marks]
    assert sizes == sorted(sizes)
    snapshots = fast_run.snapshots
    assert [step for step, _ in snapshots] == steps
    for mark, (step, frozen) in zip(fast_run.marks, snapshots):
        assert frozen.number_of_social_nodes() == mark.num_social_nodes
        assert frozen.number_of_social_edges() == mark.num_social_edges
        assert frozen.number_of_attribute_edges() == mark.num_attribute_edges
    # The last watermark is the final state.
    final, last = fast_run.san, snapshots[-1][1]
    assert final.number_of_social_edges() == last.number_of_social_edges()


def test_snapshot_prefixes_are_nested(fast_run):
    early = fast_run.snapshots[0][1]
    late = fast_run.san
    for source, target in list(early.social_edges())[:200]:
        assert late.has_social_edge(source, target)


def test_no_snapshot_every_means_no_marks():
    run = generate_san_fast(SANModelParameters(steps=50), rng=2)
    assert run.marks == []
    assert run.snapshots == []


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_fast_engine_deterministic_given_seed(parity_params):
    first = generate_san_fast(SANModelParameters(steps=150), rng=123)
    second = generate_san_fast(SANModelParameters(steps=150), rng=123)
    assert np.array_equal(first.social_src, second.social_src)
    assert np.array_equal(first.social_dst, second.social_dst)
    assert np.array_equal(first.link_social, second.link_social)
    assert np.array_equal(first.link_attr, second.link_attr)
    assert first.attribute_labels == second.attribute_labels


# ----------------------------------------------------------------------
# Distributional parity gate (loop vs vectorized)
# ----------------------------------------------------------------------
def test_ks_parity_out_degree(fast_run, loop_run):
    fast_degrees = list(social_out_degrees(fast_run.san))
    loop_degrees = list(social_out_degrees(loop_run.san))
    statistic = two_sample_ks_statistic(fast_degrees, loop_degrees)
    threshold = ks_two_sample_threshold(len(fast_degrees), len(loop_degrees))
    assert statistic < threshold, (
        f"out-degree KS {statistic:.4f} >= threshold {threshold:.4f}"
    )


def test_ks_parity_attribute_degree(fast_run, loop_run):
    fast_degrees = list(attribute_degrees_of_social_nodes(fast_run.san))
    loop_degrees = list(attribute_degrees_of_social_nodes(loop_run.san))
    statistic = two_sample_ks_statistic(fast_degrees, loop_degrees)
    threshold = ks_two_sample_threshold(len(fast_degrees), len(loop_degrees))
    assert statistic < threshold, (
        f"attribute-degree KS {statistic:.4f} >= threshold {threshold:.4f}"
    )


def test_edge_counts_agree_within_run_noise(fast_run, loop_run):
    fast_edges = fast_run.summary()["social_edges"]
    loop_edges = loop_run.san.number_of_social_edges()
    assert fast_edges == pytest.approx(loop_edges, rel=0.25)


# ----------------------------------------------------------------------
# Algorithm 1 fidelity regressions (both engines)
# ----------------------------------------------------------------------
def _realized_attribute_mean(san, seed_count):
    degrees = [
        san.attribute_degree(node)
        for node in san.social_nodes()
        if isinstance(node, int) and node >= seed_count
    ]
    return sum(degrees) / len(degrees)


@pytest.mark.parametrize("engine", ["loop", "vectorized"])
def test_realized_attribute_degree_matches_sampled_mean(engine):
    """Duplicate existing-attribute draws must be retried, not dropped.

    With a small new-attribute probability most draws target existing
    attributes and collisions are frequent; before the retry fix the realized
    mean sat ~20% below the sampled lognormal mean.  The retried sampler
    stays within estimation noise of ``exp(mu + sigma^2 / 2)``.
    """
    params = SANModelParameters(
        steps=800,
        new_attribute_probability=0.05,
        attribute_mu=1.2,
        attribute_sigma=0.6,
    )
    run = san_generate(params, rng=4, engine=engine)
    san = run.san if engine == "loop" else run.to_san()
    realized = _realized_attribute_mean(san, params.seed_social_nodes)
    sampled_mean = math.exp(params.attribute_mu + params.attribute_sigma**2 / 2)
    assert realized == pytest.approx(sampled_mean, rel=0.10)


@pytest.mark.parametrize("engine", ["loop", "vectorized"])
def test_seed_nodes_issue_outgoing_links(engine):
    """Seed nodes are scheduled at step 0 and keep linking after seeding."""
    params = SANModelParameters(steps=150)
    run = san_generate(params, rng=9, engine=engine)
    san = run.san
    seed_out = [
        san.social_out_degree(node) for node in range(params.seed_social_nodes)
    ]
    baseline = params.seed_social_nodes - 1  # the complete-seed out-degree
    assert any(degree > baseline for degree in seed_out)


# ----------------------------------------------------------------------
# Engine registry routing
# ----------------------------------------------------------------------
def test_both_engines_registered():
    backends = {entry.backend for entry in kernels_for(SAN_GENERATE_OP)}
    assert backends == {LOOP_ENGINE, VECTORIZED_ENGINE}
    assert select(SAN_GENERATE_OP, LOOP_ENGINE) is not None
    assert select(SAN_GENERATE_OP, VECTORIZED_ENGINE) is not None


def test_san_generate_routes_by_engine():
    params = SANModelParameters(steps=40)
    loop_result = san_generate(params, rng=1, engine="loop")
    fast_result = san_generate(params, rng=1, engine="vectorized")
    assert isinstance(loop_result, SANModelRun)
    assert isinstance(fast_result, FastSANModelRun)
    auto_result = san_generate(params, rng=1, engine="auto")
    assert isinstance(auto_result, FastSANModelRun)


def test_san_generate_auto_falls_back_for_nonunit_alpha():
    params = SANModelParameters(
        steps=40, attachment=AttachmentParameters(alpha=1.5, beta=10.0)
    )
    result = san_generate(params, rng=1, engine="auto")
    assert isinstance(result, SANModelRun)
    with pytest.raises(ValueError):
        generate_san_fast(params, rng=1)


def test_san_generate_rejects_unknown_engine():
    with pytest.raises(NoKernelError):
        san_generate(SANModelParameters(steps=10), engine="gpu")


# ----------------------------------------------------------------------
# History recording and ablations
# ----------------------------------------------------------------------
def test_fast_engine_records_replayable_history():
    params = SANModelParameters(steps=120)
    run = generate_san_fast(params, rng=6, record_history=True)
    history = run.history()
    assert history.num_node_joins() == params.steps
    replayed = history.final_san()
    assert replayed.number_of_social_edges() == run.summary()["social_edges"]
    assert replayed.number_of_attribute_edges() == run.summary()["attribute_edges"]


def test_fast_engine_without_history_is_empty():
    run = generate_san_fast(SANModelParameters(steps=30), rng=6)
    history = run.history()
    assert history.events == []


@pytest.mark.parametrize(
    "kwargs",
    [
        {"use_lapa": False},
        {"use_focal_closure": False},
        {"reciprocation_probability": 0.0},
        {"arrivals_per_step": 3},
    ],
)
def test_fast_engine_ablations_run(kwargs):
    params = SANModelParameters(steps=120, **kwargs)
    run = generate_san_fast(params, rng=5)
    expected_nodes = params.seed_social_nodes + 120 * params.arrivals_per_step
    assert run.num_social_nodes == expected_nodes
    assert run.summary()["social_edges"] > expected_nodes
    if kwargs.get("reciprocation_probability") == 0.0:
        assert global_reciprocity(run.san) < 0.1


# ----------------------------------------------------------------------
# Distributional parity under adversarial / churn regimes
# ----------------------------------------------------------------------
REGIME_PARAMS = {
    "churn": dict(attribute_churn_rate=0.2),
    "flash-crowd": dict(flash_crowds=(FlashCrowd(step=600, arrivals=150),)),
    "sybil-waves": dict(
        sybil_waves=(
            SybilWave(step=500, num_sybils=30, attack_edges_per_sybil=2,
                      intra_links=45),
            SybilWave(step=900, num_sybils=20, attack_edges_per_sybil=1,
                      intra_links=30),
        )
    ),
}


@pytest.fixture(scope="module", params=sorted(REGIME_PARAMS))
def regime_runs(request):
    params = SANModelParameters(steps=1200, **REGIME_PARAMS[request.param])
    fast = generate_san_fast(params, rng=PARITY_SEED)
    loop = generate_san(params, rng=PARITY_SEED, record_history=False)
    return request.param, params, fast, loop


def test_ks_parity_out_degree_under_regimes(regime_runs):
    """The vectorized engine must track the loop engine inside every regime."""
    name, _, fast, loop = regime_runs
    fast_degrees = list(social_out_degrees(fast.san))
    loop_degrees = list(social_out_degrees(loop.san))
    statistic = two_sample_ks_statistic(fast_degrees, loop_degrees)
    threshold = ks_two_sample_threshold(len(fast_degrees), len(loop_degrees))
    assert statistic < threshold, (
        f"{name}: out-degree KS {statistic:.4f} >= threshold {threshold:.4f}"
    )


def test_ks_parity_attribute_degree_under_regimes(regime_runs):
    name, _, fast, loop = regime_runs
    fast_degrees = list(attribute_degrees_of_social_nodes(fast.san))
    loop_degrees = list(attribute_degrees_of_social_nodes(loop.san))
    statistic = two_sample_ks_statistic(fast_degrees, loop_degrees)
    threshold = ks_two_sample_threshold(len(fast_degrees), len(loop_degrees))
    assert statistic < threshold, (
        f"{name}: attribute-degree KS {statistic:.4f} >= threshold {threshold:.4f}"
    )


def test_regime_structural_counts_agree(regime_runs):
    """Deterministic regime bookkeeping must match exactly across engines."""
    name, params, fast, loop = regime_runs
    assert len(fast.sybil_nodes) == len(loop.sybil_nodes) == sum(
        wave.num_sybils for wave in params.sybil_waves
    )
    expected_nodes = (
        params.seed_social_nodes
        + params.steps * params.arrivals_per_step
        + sum(crowd.arrivals for crowd in params.flash_crowds)
        + sum(wave.num_sybils for wave in params.sybil_waves)
    )
    assert fast.san.number_of_social_nodes() == expected_nodes
    assert loop.san.number_of_social_nodes() == expected_nodes
    fast_edges = fast.summary()["social_edges"]
    loop_edges = loop.san.number_of_social_edges()
    assert fast_edges == pytest.approx(loop_edges, rel=0.25), name
