"""Tests for the whole-SAN metric report."""

import pytest

from repro.metrics import format_report, san_metric_report


def test_report_contains_headline_metrics(figure1_san):
    report = san_metric_report(figure1_san, clustering_samples=3000, rng=1)
    expected_keys = {
        "social_nodes",
        "attribute_nodes",
        "reciprocity",
        "social_density",
        "attribute_density",
        "attribute_declaration_fraction",
        "social_assortativity",
        "attribute_assortativity",
        "avg_social_clustering",
        "avg_attribute_clustering",
        "social_effective_diameter",
        "mean_out_degree",
    }
    assert expected_keys.issubset(report.keys())
    assert report["reciprocity"] == pytest.approx(0.6)
    assert report["social_nodes"] == 6


def test_report_without_diameter(figure1_san):
    report = san_metric_report(figure1_san, include_diameter=False, rng=1)
    assert "social_effective_diameter" not in report


def test_format_report_renders_all_keys(figure1_san):
    report = san_metric_report(figure1_san, include_diameter=False, rng=1)
    text = format_report(report, title="Fixture SAN")
    assert "Fixture SAN" in text
    for key in report:
        assert key in text


def test_report_accepts_frozen_san_directly(figure1_san):
    frozen = figure1_san.freeze()
    report = san_metric_report(frozen, clustering_samples=500, rng=1)
    assert report["social_nodes"] == 6
    assert report["reciprocity"] == pytest.approx(0.6)


def test_report_freeze_flag_matches_backend_agnostic_keys(figure1_san):
    mutable_report = san_metric_report(
        figure1_san, include_diameter=False, clustering_samples=500, rng=1
    )
    frozen_report = san_metric_report(
        figure1_san, include_diameter=False, clustering_samples=500, rng=1, freeze=True
    )
    assert set(mutable_report) == set(frozen_report)
    # Deterministic (non-sampled) metrics agree exactly across backends.
    for key in ("social_nodes", "social_edges", "reciprocity", "social_assortativity"):
        assert mutable_report[key] == pytest.approx(frozen_report[key])


def test_frozen_san_report_extends_headline_metrics(figure1_san):
    from repro.metrics import frozen_san_report

    report = frozen_san_report(
        figure1_san, include_diameter=False, clustering_samples=500, rng=1
    )
    for key in (
        "exact_social_clustering",
        "exact_attribute_clustering",
        "triangles",
        "wcc_count",
        "largest_wcc_size",
        "wcc_fraction",
    ):
        assert key in report
    assert report["wcc_count"] >= 1
    assert 0.0 <= report["wcc_fraction"] <= 1.0
    # Same battery on the already-frozen SAN: identical values.
    frozen_report = frozen_san_report(
        figure1_san.freeze(), include_diameter=False, clustering_samples=500, rng=1
    )
    assert frozen_report["triangles"] == report["triangles"]
    assert frozen_report["wcc_count"] == report["wcc_count"]
