"""Tests for the whole-SAN metric report."""

import pytest

from repro.metrics import format_report, san_metric_report


def test_report_contains_headline_metrics(figure1_san):
    report = san_metric_report(figure1_san, clustering_samples=3000, rng=1)
    expected_keys = {
        "social_nodes",
        "attribute_nodes",
        "reciprocity",
        "social_density",
        "attribute_density",
        "attribute_declaration_fraction",
        "social_assortativity",
        "attribute_assortativity",
        "avg_social_clustering",
        "avg_attribute_clustering",
        "social_effective_diameter",
        "mean_out_degree",
    }
    assert expected_keys.issubset(report.keys())
    assert report["reciprocity"] == pytest.approx(0.6)
    assert report["social_nodes"] == 6


def test_report_without_diameter(figure1_san):
    report = san_metric_report(figure1_san, include_diameter=False, rng=1)
    assert "social_effective_diameter" not in report


def test_format_report_renders_all_keys(figure1_san):
    report = san_metric_report(figure1_san, include_diameter=False, rng=1)
    text = format_report(report, title="Fixture SAN")
    assert "Fixture SAN" in text
    for key in report:
        assert key in text
