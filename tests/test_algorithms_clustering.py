"""Tests for exact and approximate clustering coefficients."""

import pytest

from repro.algorithms import (
    approximate_attribute_clustering,
    approximate_average_clustering,
    approximate_social_clustering,
    average_attribute_clustering_coefficient,
    average_clustering_for_attribute_type,
    average_social_clustering_coefficient,
    clustering_by_degree,
    directed_links_among,
    node_clustering_coefficient,
    required_samples,
    triple_score,
)
from repro.graph import SAN, san_from_edge_lists


def test_clique_clustering_is_one(clique_san):
    for node in clique_san.social_nodes():
        assert node_clustering_coefficient(clique_san, node) == pytest.approx(1.0)
    assert average_social_clustering_coefficient(clique_san) == pytest.approx(1.0)
    # The shared attribute node's neighborhood is the whole clique.
    assert node_clustering_coefficient(clique_san, "employer:Acme") == pytest.approx(1.0)
    assert average_attribute_clustering_coefficient(clique_san) == pytest.approx(1.0)


def test_ring_clustering_is_zero(ring_san):
    assert average_social_clustering_coefficient(ring_san) == pytest.approx(0.0)


def test_node_clustering_with_one_way_links():
    # Triangle where only one directed link exists among the two neighbors of 1.
    san = san_from_edge_lists([(1, 2), (1, 3), (2, 3)])
    # Neighbors of 1 are {2, 3}; one directed link among them over 2 ordered pairs.
    assert node_clustering_coefficient(san, 1) == pytest.approx(0.5)


def test_node_clustering_degree_below_two_is_zero():
    san = san_from_edge_lists([(1, 2)])
    assert node_clustering_coefficient(san, 1) == 0.0


def test_directed_links_among(figure1_san):
    # Among {1, 2, 3}: 1<->2, 2<->3, 1->3 = 5 directed links.
    assert directed_links_among(figure1_san, [1, 2, 3]) == 5


def test_attribute_node_clustering(figure1_san):
    # employer:Google members {1, 2} linked reciprocally -> c = 2/(2*1) = 1.
    assert node_clustering_coefficient(figure1_san, "employer:Google") == pytest.approx(1.0)
    # major:CS members {4, 5} are not linked.
    assert node_clustering_coefficient(figure1_san, "major:Computer Science") == 0.0


def test_average_clustering_for_attribute_type(figure1_san):
    employer = average_clustering_for_attribute_type(figure1_san, "employer")
    major = average_clustering_for_attribute_type(figure1_san, "major")
    assert employer == pytest.approx(1.0)
    assert major == pytest.approx(0.0)
    assert average_clustering_for_attribute_type(figure1_san, "unknown") == 0.0


def test_clustering_by_degree_social(clique_san):
    points = clustering_by_degree(clique_san, kind="social")
    assert points == [(5, pytest.approx(1.0))]


def test_clustering_by_degree_invalid_kind(clique_san):
    with pytest.raises(ValueError):
        clustering_by_degree(clique_san, kind="bogus")


def test_required_samples_formula():
    # ceil(ln(200) / (2 * 0.002^2)) = 662290
    assert required_samples(0.002, 100) == 662290
    assert required_samples(0.05, 10) > 0
    with pytest.raises(ValueError):
        required_samples(0.0, 10)
    with pytest.raises(ValueError):
        required_samples(0.1, 0)


def test_triple_score(figure1_san):
    assert triple_score(figure1_san, 1, 2) == 2  # reciprocal
    assert triple_score(figure1_san, 1, 3) == 1  # one-way
    assert triple_score(figure1_san, 1, 6) == 0  # unconnected


def test_approximate_matches_exact_on_clique(clique_san):
    approx = approximate_social_clustering(clique_san, num_samples=2000, rng=5)
    assert approx == pytest.approx(1.0, abs=0.05)


def test_approximate_matches_exact_on_figure1(figure1_san):
    exact = average_social_clustering_coefficient(figure1_san)
    approx = approximate_social_clustering(figure1_san, num_samples=20000, rng=11)
    assert approx == pytest.approx(exact, abs=0.05)


def test_approximate_attribute_clustering(figure1_san):
    exact = average_attribute_clustering_coefficient(figure1_san)
    approx = approximate_attribute_clustering(figure1_san, num_samples=20000, rng=2)
    assert approx == pytest.approx(exact, abs=0.07)


def test_approximate_empty_population():
    assert approximate_average_clustering(SAN(), population=[], num_samples=10) == 0.0


def test_approximate_with_epsilon_nu_defaults(figure1_san):
    # Uses the paper's K = ceil(ln(2*nu) / (2 eps^2)) with looser eps for speed.
    value = approximate_average_clustering(
        figure1_san, epsilon=0.05, nu=20, rng=3
    )
    exact = average_social_clustering_coefficient(figure1_san)
    assert value == pytest.approx(exact, abs=0.1)


class _CountingRng(__import__("random").Random):
    """Counts randrange calls so tests can pin the number of drawn triples."""

    def __init__(self, seed):
        super().__init__(seed)
        self.randrange_calls = 0

    def randrange(self, *args, **kwargs):
        self.randrange_calls += 1
        return super().randrange(*args, **kwargs)


def test_approximate_draws_exactly_num_samples_triples(clique_san):
    """Regression for the dead rejection guard: the estimator draws exactly
    ``num_samples`` triples — a center pick plus two endpoint picks when the
    center has >= 2 neighbors."""
    rng = _CountingRng(7)
    approximate_average_clustering(clique_san, num_samples=100, rng=rng)
    assert rng.randrange_calls == 3 * 100


def test_approximate_low_degree_centers_count_as_samples():
    """Centers with < 2 neighbors consume one pick and contribute c(u) = 0;
    they are samples, not rejections, so an edgeless SAN still terminates
    after exactly ``num_samples`` draws."""
    san = SAN()
    for node in range(5):
        san.add_social_node(node)
    rng = _CountingRng(11)
    assert approximate_average_clustering(san, num_samples=50, rng=rng) == 0.0
    assert rng.randrange_calls == 50


def test_approximate_zero_samples_is_zero(figure1_san):
    assert approximate_average_clustering(figure1_san, num_samples=0, rng=1) == 0.0
