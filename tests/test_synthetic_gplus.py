"""Tests for the synthetic Google+ ground-truth simulator."""

import pytest

from repro.metrics import (
    PhaseBoundaries,
    attribute_declaration_fraction,
    global_reciprocity,
)
from repro.synthetic import GooglePlusConfig, simulate_google_plus


def test_evolution_basic_counts(tiny_evolution):
    final = tiny_evolution.final_san()
    assert final.number_of_social_nodes() == pytest.approx(400, rel=0.1)
    assert final.number_of_social_edges() > final.number_of_social_nodes()
    assert final.number_of_attribute_edges() > 0
    assert tiny_evolution.num_days == 40
    assert len(tiny_evolution.join_day) == final.number_of_social_nodes()


def test_events_are_day_ordered(tiny_evolution):
    days = [timed.day for timed in tiny_evolution.events]
    assert days == sorted(days)
    assert days[0] >= 1 and days[-1] <= tiny_evolution.num_days


def test_san_at_is_monotone(tiny_evolution):
    early = tiny_evolution.san_at(10)
    late = tiny_evolution.san_at(30)
    assert early.number_of_social_nodes() < late.number_of_social_nodes()
    assert early.number_of_social_edges() < late.number_of_social_edges()
    # Every early edge persists.
    for source, target in early.social_edges():
        assert late.has_social_edge(source, target)


def test_snapshots_match_san_at(tiny_evolution):
    snapshots = tiny_evolution.snapshots([10, 30])
    assert [day for day, _ in snapshots] == [10, 30]
    for day, san in snapshots:
        direct = tiny_evolution.san_at(day)
        assert san.number_of_social_edges() == direct.number_of_social_edges()
        assert san.number_of_attribute_edges() == direct.number_of_attribute_edges()


def test_join_days_respect_arrival_schedule(tiny_evolution):
    for user, day in tiny_evolution.join_day.items():
        assert 1 <= day <= tiny_evolution.num_days
    final = tiny_evolution.final_san()
    users_by_day20 = tiny_evolution.users_joining_by(20)
    assert 0 < len(users_by_day20) < final.number_of_social_nodes()


def test_declaration_fraction_matches_config(tiny_evolution):
    final = tiny_evolution.final_san()
    fraction = attribute_declaration_fraction(final)
    assert fraction == pytest.approx(0.22, abs=0.08)


def test_profiles_only_for_declaring_users(tiny_evolution):
    final = tiny_evolution.final_san()
    for user, profile in tiny_evolution.profiles.items():
        if profile:
            assert final.attribute_degree(user) == len(profile)
        else:
            assert final.attribute_degree(user) == 0


def test_reciprocity_in_plausible_range(tiny_evolution):
    reciprocity = global_reciprocity(tiny_evolution.final_san())
    assert 0.3 < reciprocity < 0.85


def test_arrival_history_between_days(tiny_evolution):
    history = tiny_evolution.arrival_history(start_day=21, end_day=40)
    assert history.initial.number_of_social_nodes() == tiny_evolution.san_at(20).number_of_social_nodes()
    final = history.final_san()
    expected = tiny_evolution.san_at(40)
    assert final.number_of_social_edges() == expected.number_of_social_edges()


def test_new_social_links_between(tiny_evolution):
    links = tiny_evolution.new_social_links_between(20, 40)
    early = tiny_evolution.san_at(20)
    late = tiny_evolution.san_at(40)
    assert len(links) == late.number_of_social_edges() - early.number_of_social_edges()
    for source, target in links[:50]:
        assert not early.has_social_edge(source, target)
        assert late.has_social_edge(source, target)


def test_config_validation():
    with pytest.raises(ValueError):
        GooglePlusConfig(triadic_probability=0.9, focal_probability=0.3)
    with pytest.raises(ValueError):
        GooglePlusConfig(declare_probability=1.5)


def test_simulation_deterministic_given_seed():
    config = GooglePlusConfig(
        total_users=120, num_days=20, phases=PhaseBoundaries(5, 15)
    )
    first = simulate_google_plus(config, rng=42)
    second = simulate_google_plus(config, rng=42)
    assert len(first.events) == len(second.events)
    assert first.final_san().number_of_social_edges() == second.final_san().number_of_social_edges()


def test_simulation_serialized_determinism(tmp_path):
    """Same seed + config produce byte-identical serialized final SANs."""
    from repro.graph import save_san_tsv

    config = GooglePlusConfig(
        total_users=120, num_days=20, phases=PhaseBoundaries(5, 15)
    )
    for index in (1, 2):
        evolution = simulate_google_plus(config, rng=42)
        save_san_tsv(
            evolution.final_san(),
            tmp_path / f"run{index}.social.tsv",
            tmp_path / f"run{index}.attrs.tsv",
        )
    for suffix in ("social.tsv", "attrs.tsv"):
        assert (tmp_path / f"run1.{suffix}").read_bytes() == (
            tmp_path / f"run2.{suffix}"
        ).read_bytes()


def test_frozen_snapshots_match_copied_snapshots(tiny_evolution):
    """Delta-materialized frozen snapshots equal the replay-copy snapshots."""
    days = [10, 25, 40]
    copied = tiny_evolution.snapshots(days)
    frozen = tiny_evolution.frozen_snapshots(days)
    assert [day for day, _ in frozen] == [day for day, _ in copied]
    for (day, san), (_, view) in zip(copied, frozen):
        assert view.summary() == san.summary()
        for source, target in list(san.social_edges())[:100]:
            assert view.has_social_edge(source, target)
        for social, attribute in list(san.attribute_edges())[:100]:
            assert view.has_attribute_edge(social, attribute)
            assert view.attribute_info(attribute) == san.attribute_info(attribute)


def test_three_phase_growth_visible(tiny_evolution):
    """Node growth accelerates again in phase III (public release)."""
    phases = tiny_evolution.phases
    nodes_phase2_end = tiny_evolution.san_at(phases.phase_two_end).number_of_social_nodes()
    nodes_mid_phase2 = tiny_evolution.san_at(
        (phases.phase_one_end + phases.phase_two_end) // 2
    ).number_of_social_nodes()
    nodes_final = tiny_evolution.final_san().number_of_social_nodes()
    phase2_rate = (nodes_phase2_end - nodes_mid_phase2) / max(
        phases.phase_two_end - (phases.phase_one_end + phases.phase_two_end) // 2, 1
    )
    phase3_rate = (nodes_final - nodes_phase2_end) / max(
        tiny_evolution.num_days - phases.phase_two_end, 1
    )
    assert phase3_rate > phase2_rate
