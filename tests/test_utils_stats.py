"""Unit tests for the statistics helpers."""

import math

import pytest

from repro.utils import (
    ccdf,
    empirical_pmf,
    log_binned_average,
    log_binned_histogram,
    percentile,
    summarize,
)


def test_empirical_pmf_sums_to_one():
    pmf = empirical_pmf([1, 1, 2, 3, 3, 3])
    assert pmf[1] == pytest.approx(2 / 6)
    assert pmf[3] == pytest.approx(3 / 6)
    assert sum(pmf.values()) == pytest.approx(1.0)


def test_empirical_pmf_empty():
    assert empirical_pmf([]) == {}


def test_ccdf_monotone_decreasing():
    points = ccdf([1, 2, 2, 5])
    values = [p for _, p in points]
    assert values == sorted(values, reverse=True)
    assert points[0] == (1, 1.0)
    assert points[-1][0] == 5
    assert points[-1][1] == pytest.approx(0.25)


def test_ccdf_empty():
    assert ccdf([]) == []


def test_percentile_interpolation():
    values = [1, 2, 3, 4, 5]
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 5
    assert percentile(values, 50) == 3
    assert percentile(values, 25) == pytest.approx(2.0)
    assert percentile([7], 90) == 7


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 150)


def test_summarize():
    summary = summarize([2, 4, 6])
    assert summary["count"] == 3
    assert summary["mean"] == pytest.approx(4.0)
    assert summary["median"] == pytest.approx(4.0)
    assert summary["min"] == 2 and summary["max"] == 6
    assert summary["std"] == pytest.approx(math.sqrt(8 / 3))


def test_summarize_empty():
    assert summarize([])["count"] == 0


def test_log_binned_histogram_density_positive():
    values = [1] * 50 + [10] * 20 + [100] * 5
    points = log_binned_histogram(values)
    assert all(density > 0 for _, density in points)
    # Density at small degrees should exceed density at large degrees.
    assert points[0][1] > points[-1][1]


def test_log_binned_histogram_ignores_non_positive():
    assert log_binned_histogram([0, -1]) == []


def test_log_binned_average_groups_by_x():
    pairs = [(1, 10.0), (1, 20.0), (100, 5.0)]
    points = log_binned_average(pairs)
    assert points[0][1] == pytest.approx(15.0)
    assert points[-1][1] == pytest.approx(5.0)


def test_log_binned_average_empty():
    assert log_binned_average([]) == []


def test_two_sample_ks_identical_samples_is_zero():
    from repro.utils import two_sample_ks_statistic

    sample = [1, 2, 2, 3, 5, 8]
    assert two_sample_ks_statistic(sample, list(sample)) == 0.0


def test_two_sample_ks_disjoint_samples_is_one():
    from repro.utils import two_sample_ks_statistic

    assert two_sample_ks_statistic([1, 2, 3], [10, 11, 12]) == pytest.approx(1.0)


def test_two_sample_ks_handles_ties():
    from repro.utils import two_sample_ks_statistic

    # Heavily tied discrete samples with near-identical CDFs: a tie-unaware
    # merge would report a large gap mid-run; the true statistic is tiny.
    first = [1] * 500 + [2] * 300 + [3] * 200
    second = [1] * 498 + [2] * 302 + [3] * 200
    assert two_sample_ks_statistic(first, second) == pytest.approx(0.002)


def test_two_sample_ks_rejects_empty():
    from repro.utils import two_sample_ks_statistic

    with pytest.raises(ValueError):
        two_sample_ks_statistic([], [1])


def test_ks_threshold_shrinks_with_sample_size():
    from repro.utils import ks_two_sample_threshold

    small = ks_two_sample_threshold(100, 100)
    large = ks_two_sample_threshold(10_000, 10_000)
    assert large < small
    # Looser alpha -> smaller threshold is wrong; stricter alpha -> larger.
    assert ks_two_sample_threshold(100, 100, alpha=0.0001) > small
    with pytest.raises(ValueError):
        ks_two_sample_threshold(0, 10)
    with pytest.raises(ValueError):
        ks_two_sample_threshold(10, 10, alpha=1.5)
