"""Tests for the binary columnar storage tier.

Covers the format contract end to end: round-trip bit-identity (in-RAM vs
mmap) across representative engine kernels, the named error taxonomy for
malformed files, label-encoding selection, extras sections, the
``REPRO_MMAP`` spill path, shared-memory export from mmap-backed graphs, and
the artifact cache's zero-parse warm hits.
"""

import gc
import json
import os
import struct

import numpy as np
import pytest

from repro.algorithms.clustering import average_social_clustering_coefficient
from repro.algorithms.components import weakly_connected_components
from repro.algorithms.triangles import count_directed_triangles
from repro.engine import parallel
from repro.graph import (
    DiGraph,
    FrozenDiGraph,
    FrozenSAN,
    columnar_info,
    is_mmap_backed,
    load_columnar_extras,
    load_san_tsv,
    maybe_spill,
    mmap_forced,
    open_columnar,
    save_columnar,
    save_san_tsv,
    spill_to_mmap,
)
from repro.graph.columnar import (
    FORMAT_VERSION,
    MAGIC,
    SECTION_ALIGNMENT,
    _collect_sections,
)
from repro.graph.errors import (
    ColumnarEndiannessError,
    ColumnarFormatError,
    ColumnarMagicError,
    ColumnarTruncatedError,
    ColumnarVersionError,
    GraphError,
)
from repro.graph.frozen import IdentityLabels
from repro.metrics.reciprocity import reciprocal_edge_count


def _assert_sections_identical(left, right):
    """Bit-level equality of two graphs' flattened section arrays."""
    kind_l, sections_l, meta_l = _collect_sections(left, None)
    kind_r, sections_r, meta_r = _collect_sections(right, None)
    assert kind_l == kind_r
    assert set(sections_l) == set(sections_r)
    for name in sections_l:
        a, b = np.asarray(sections_l[name]), np.asarray(sections_r[name])
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name
    assert json.dumps(meta_l, sort_keys=True, default=str) == json.dumps(
        meta_r, sort_keys=True, default=str
    )


@pytest.fixture
def columnar_path(tmp_path, figure1_san):
    path = tmp_path / "san.col"
    save_columnar(figure1_san, path)
    return path


# ----------------------------------------------------------------------
# Round-trip bit-identity
# ----------------------------------------------------------------------
def test_round_trip_is_bit_identical(columnar_path, figure1_san):
    frozen = figure1_san.freeze()
    for mode in ("r", None):
        reopened = open_columnar(columnar_path, mmap_mode=mode)
        assert isinstance(reopened, FrozenSAN)
        _assert_sections_identical(frozen, reopened)


def test_mmap_and_ram_reads_agree(columnar_path):
    _assert_sections_identical(
        open_columnar(columnar_path, mmap_mode="r"),
        open_columnar(columnar_path, mmap_mode=None),
    )


def test_kernels_agree_between_ram_and_mmap(columnar_path, figure1_san):
    frozen = figure1_san.freeze()
    mapped = open_columnar(columnar_path, mmap_mode="r")
    assert is_mmap_backed(mapped) and not is_mmap_backed(frozen)
    assert count_directed_triangles(mapped) == count_directed_triangles(frozen)
    assert reciprocal_edge_count(mapped) == reciprocal_edge_count(frozen)
    assert average_social_clustering_coefficient(
        mapped
    ) == average_social_clustering_coefficient(frozen)
    assert weakly_connected_components(mapped.social) == weakly_connected_components(
        frozen.social
    )


def test_attribute_metadata_round_trips(columnar_path):
    san = open_columnar(columnar_path, mmap_mode="r")
    assert san.attribute_type("employer:Google") == "employer"
    assert san.attribute_info("city:San Francisco").value == "San Francisco"
    assert sorted(san.attributes.members_of("school:UC Berkeley")) == [2, 3]


def test_digraph_round_trip(tmp_path):
    graph = DiGraph()
    for source, target in [(0, 1), (1, 2), (2, 0), (0, 2)]:
        graph.add_edge(source, target)
    path = tmp_path / "digraph.col"
    save_columnar(graph, path)
    reopened = open_columnar(path, mmap_mode="r")
    assert isinstance(reopened, FrozenDiGraph)
    _assert_sections_identical(graph.freeze(), reopened)
    assert columnar_info(path)["kind"] == "digraph"


def test_mmap_arrays_are_read_only(columnar_path):
    san = open_columnar(columnar_path, mmap_mode="r")
    _, indices = san.social.out_csr()
    with pytest.raises(ValueError):
        indices[0] = 99


def test_save_is_atomic_and_leaves_no_temp_files(tmp_path, figure1_san):
    path = tmp_path / "san.col"
    save_columnar(figure1_san, path)
    assert [entry.name for entry in tmp_path.iterdir()] == ["san.col"]


def test_save_rejects_non_graph():
    with pytest.raises(TypeError):
        save_columnar({"not": "a graph"}, "/tmp/never-written.col")


# ----------------------------------------------------------------------
# Header validation and the named error taxonomy
# ----------------------------------------------------------------------
def test_columnar_info_reports_layout(columnar_path, figure1_san):
    info = columnar_info(columnar_path)
    assert info["kind"] == "san"
    assert info["version"] == FORMAT_VERSION
    assert info["data_start"] % SECTION_ALIGNMENT == 0
    for name, spec in info["sections"].items():
        assert spec["offset"] % SECTION_ALIGNMENT == 0, name
        assert spec["dtype"][0] in ("<", "|"), name
    counts = info["meta"]["counts"]
    assert counts["social_nodes"] == figure1_san.number_of_social_nodes()
    assert counts["social_edges"] == figure1_san.number_of_social_edges()
    assert counts["attribute_edges"] == figure1_san.number_of_attribute_edges()


def test_empty_file_raises_truncated(tmp_path):
    path = tmp_path / "empty.col"
    path.write_bytes(b"")
    with pytest.raises(ColumnarTruncatedError):
        open_columnar(path)


def test_bad_magic_raises(tmp_path, columnar_path):
    raw = bytearray(columnar_path.read_bytes())
    raw[:8] = b"NOTACOL\x00"
    bad = tmp_path / "bad-magic.col"
    bad.write_bytes(bytes(raw))
    with pytest.raises(ColumnarMagicError):
        open_columnar(bad)


def test_future_version_raises_with_details(tmp_path, columnar_path):
    raw = bytearray(columnar_path.read_bytes())
    raw[8:12] = struct.pack("<I", 99)
    newer = tmp_path / "future.col"
    newer.write_bytes(bytes(raw))
    with pytest.raises(ColumnarVersionError) as excinfo:
        open_columnar(newer)
    assert excinfo.value.found == 99
    assert excinfo.value.supported == FORMAT_VERSION


def test_big_endian_bom_raises(tmp_path, columnar_path):
    raw = bytearray(columnar_path.read_bytes())
    raw[12:16] = struct.pack(">I", 0x01020304)
    swapped = tmp_path / "big-endian.col"
    swapped.write_bytes(bytes(raw))
    with pytest.raises(ColumnarEndiannessError):
        open_columnar(swapped)


def test_garbage_bom_raises_format_error(tmp_path, columnar_path):
    raw = bytearray(columnar_path.read_bytes())
    raw[12:16] = b"\xde\xad\xbe\xef"
    garbage = tmp_path / "garbage-bom.col"
    garbage.write_bytes(bytes(raw))
    with pytest.raises(ColumnarFormatError):
        open_columnar(garbage)


def test_truncated_header_raises(tmp_path, columnar_path):
    truncated = tmp_path / "short-header.col"
    truncated.write_bytes(columnar_path.read_bytes()[:40])
    with pytest.raises(ColumnarTruncatedError):
        open_columnar(truncated)


def test_truncated_section_raises(tmp_path, columnar_path):
    raw = columnar_path.read_bytes()
    truncated = tmp_path / "short-section.col"
    truncated.write_bytes(raw[: len(raw) - 16])
    with pytest.raises(ColumnarTruncatedError):
        open_columnar(truncated)


def test_errors_share_the_graph_error_base(tmp_path):
    path = tmp_path / "junk.col"
    path.write_bytes(b"junk")
    with pytest.raises(GraphError):
        open_columnar(path)
    with pytest.raises(ColumnarFormatError):
        open_columnar(path)


def test_invalid_mmap_mode_rejected(columnar_path):
    with pytest.raises(ValueError):
        open_columnar(columnar_path, mmap_mode="r+")


# ----------------------------------------------------------------------
# Label encodings
# ----------------------------------------------------------------------
def test_identity_labels_skip_sections(tmp_path):
    graph = DiGraph()
    for i in range(5):
        graph.add_edge(i, (i + 1) % 5)
    path = tmp_path / "ring.col"
    save_columnar(graph, path)
    info = columnar_info(path)
    assert info["meta"]["labels"]["encoding"] == "identity"
    assert not any(name.startswith("labels") for name in info["sections"])
    reopened = open_columnar(path)
    assert isinstance(reopened.labels(), IdentityLabels)
    assert list(reopened.labels()) == list(range(5))


def test_int_labels_use_int64_encoding(columnar_path):
    info = columnar_info(columnar_path)
    assert info["meta"]["social_labels"]["encoding"] == "int64"
    assert "social_labels_i64" in info["sections"]


def test_string_labels_use_table_encoding(tmp_path, columnar_path):
    info = columnar_info(columnar_path)
    assert info["meta"]["attr_labels"]["encoding"] == "table"
    san = open_columnar(columnar_path)
    assert "employer:Google" in list(san.attribute_nodes())


def test_mixed_label_scalars_round_trip(tmp_path):
    graph = DiGraph()
    labels = [0, "node-one", 2.5, True, None]
    for label in labels:
        graph.add_node(label)
    graph.add_edge(0, "node-one")
    path = tmp_path / "mixed.col"
    save_columnar(graph, path)
    reopened = open_columnar(path)
    assert list(reopened.labels()) == labels
    assert [type(v) for v in reopened.labels()] == [type(v) for v in labels]


def test_unsupported_label_type_raises(tmp_path):
    graph = DiGraph()
    graph.add_node((1, 2))
    with pytest.raises(TypeError):
        save_columnar(graph, tmp_path / "never.col")


# ----------------------------------------------------------------------
# Extras sections
# ----------------------------------------------------------------------
def test_extras_round_trip(tmp_path, figure1_san):
    path = tmp_path / "with-extras.col"
    timestamps = np.arange(10, dtype=np.float64) * 1.5
    days = np.arange(10, dtype=np.int32)
    save_columnar(figure1_san, path, extras={"timestamps": timestamps, "days": days})
    for mode in ("r", None):
        loaded = load_columnar_extras(path, mmap_mode=mode)
        assert set(loaded) == {"timestamps", "days"}
        assert np.array_equal(loaded["timestamps"], timestamps)
        assert loaded["days"].dtype == np.dtype("<i4")
    assert isinstance(open_columnar(path), FrozenSAN)


def test_extras_name_with_colon_rejected(tmp_path, figure1_san):
    with pytest.raises(ValueError):
        save_columnar(
            figure1_san, tmp_path / "never.col", extras={"a:b": np.zeros(3)}
        )


def test_extras_absent_returns_empty(columnar_path):
    assert load_columnar_extras(columnar_path) == {}


# ----------------------------------------------------------------------
# Spill helpers and the REPRO_MMAP escape hatch
# ----------------------------------------------------------------------
def test_spill_to_mmap_leaves_no_named_file(tmp_path, figure1_san):
    frozen = figure1_san.freeze()
    spilled = spill_to_mmap(frozen, directory=str(tmp_path))
    assert is_mmap_backed(spilled)
    _assert_sections_identical(frozen, spilled)
    # POSIX: the temp file is unlinked immediately; the mapping keeps it alive.
    assert list(tmp_path.iterdir()) == []


def test_maybe_spill_is_identity_when_off(monkeypatch, figure1_san):
    monkeypatch.delenv("REPRO_MMAP", raising=False)
    frozen = figure1_san.freeze()
    assert maybe_spill(frozen) is frozen
    assert not mmap_forced()


def test_maybe_spill_reroutes_under_repro_mmap(monkeypatch, figure1_san):
    monkeypatch.setenv("REPRO_MMAP", "1")
    assert mmap_forced()
    frozen = figure1_san.freeze()
    spilled = maybe_spill(frozen)
    assert spilled is not frozen
    assert is_mmap_backed(spilled)
    _assert_sections_identical(frozen, spilled)


def test_maybe_spill_passes_mutable_graphs_through(monkeypatch, figure1_san):
    monkeypatch.setenv("REPRO_MMAP", "1")
    assert maybe_spill(figure1_san) is figure1_san


@pytest.mark.parametrize(
    "value,expected",
    [("1", True), ("true", True), ("ON", True), ("0", False), ("", False)],
)
def test_mmap_forced_parses_common_flag_spellings(monkeypatch, value, expected):
    monkeypatch.setenv("REPRO_MMAP", value)
    assert mmap_forced() is expected


def test_frozen_loaders_spill_under_repro_mmap(monkeypatch, tmp_path, figure1_san):
    monkeypatch.setenv("REPRO_MMAP", "1")
    social, attrs = tmp_path / "social.tsv", tmp_path / "attrs.tsv"
    save_san_tsv(figure1_san, social, attrs)
    loaded = load_san_tsv(social, attrs, frozen=True)
    assert is_mmap_backed(loaded)


# ----------------------------------------------------------------------
# Streaming TSV parity
# ----------------------------------------------------------------------
def test_streaming_tsv_load_matches_freeze(tmp_path, figure1_san):
    social, attrs = tmp_path / "social.tsv", tmp_path / "attrs.tsv"
    save_san_tsv(figure1_san, social, attrs)
    streamed = load_san_tsv(social, attrs, frozen=True)
    assert isinstance(streamed, FrozenSAN)
    materialized = load_san_tsv(social, attrs, frozen=False).freeze()
    _assert_sections_identical(streamed, materialized)


# ----------------------------------------------------------------------
# Shared-memory export from mmap-backed graphs
# ----------------------------------------------------------------------
def test_shared_csr_from_mmap_graph_does_not_leak_segments(columnar_path):
    before = set(parallel.live_segment_names())
    san = open_columnar(columnar_path, mmap_mode="r")
    spec = parallel.shared_out_csr(san.social)
    created = set(parallel.live_segment_names()) - before
    assert created == {spec.name}
    shm_entry = os.path.join("/dev/shm", spec.name)
    if os.path.isdir("/dev/shm"):
        assert os.path.exists(shm_entry)
    views = parallel.attach_views(spec)
    indptr, indices = san.social.out_csr()
    assert np.array_equal(views["indptr"], indptr)
    assert np.array_equal(views["indices"], indices)
    del views
    del san
    gc.collect()
    # The graph's finalizer unlinks its bundle: no lingering /dev/shm entry.
    assert spec.name not in parallel.live_segment_names()
    if os.path.isdir("/dev/shm"):
        assert not os.path.exists(shm_entry)
