"""R004 fixture: corrected — content-derived keys, timing outside builders."""

import hashlib
import json
import time

from repro.engine import kernel


@kernel("fixture.triangles_clean", backend="frozen")
def triangle_count(graph):
    return 0


def scenario_cache_token(scenario):
    payload = json.dumps(scenario, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def time_a_run(fn):
    # Plain orchestration code is out of scope: timing a run is fine as long
    # as the number never feeds a cache key or a kernel result.
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started
