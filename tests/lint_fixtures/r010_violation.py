"""R010 fixture: ad-hoc array serialization outside the columnar boundary
(parsed, never run)."""

import numpy as np
from numpy.lib.format import write_array


def dump_csr_raw(indptr, indices, handle):
    indptr.tofile("indptr.bin")  # expect[R010]
    indices.tofile(handle)  # expect[R010]


def dump_csr_npy(indptr, indices):
    np.save("indptr.npy", indptr)  # expect[R010]
    np.savez("csr.npz", indptr=indptr, indices=indices)  # expect[R010]
    np.savez_compressed("csr_small.npz", indices=indices)  # expect[R010]


def dump_via_format(array, handle):
    write_array(handle, array)  # expect[R010]
