"""R005 fixture: corrected — finalize-driven unlink in the same module."""

import weakref
from multiprocessing import shared_memory


def _unlink(segment):
    segment.close()
    segment.unlink()


class OwnedBuffer:
    def __init__(self, size):
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        weakref.finalize(self, _unlink, self._shm)

    def view(self):
        return self._shm.buf
