"""R001 fixture: the corrected forms — explicit seeds, instance methods."""

import random

import numpy as np
from numpy.random import default_rng

DEFAULT_SEED = 20120835


def seeded_generators():
    gen = np.random.default_rng(DEFAULT_SEED)
    child = default_rng([DEFAULT_SEED, 1])
    classic = random.Random(7)
    state = np.random.RandomState(seed=3)
    return gen, child, classic, state


def instance_methods_are_fine(rng):
    rng.shuffle([1, 2])
    return rng.random() + random.Random(5).random()
