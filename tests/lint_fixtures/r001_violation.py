"""R001 fixture: unseeded and global-state RNG calls.

Every violating line carries a trailing ``expect`` marker the test
suite parses, so the expected findings live next to the code that earns
them.  This file is parsed by the linter, never imported.
"""

import random

import numpy as np
from numpy.random import default_rng


def unseeded_generators():
    gen = np.random.default_rng()  # expect[R001]
    bare = default_rng(None)  # expect[R001]
    legacy = random.Random()  # expect[R001]
    state = np.random.RandomState()  # expect[R001]
    return gen, bare, legacy, state


def legacy_numpy_and_global_random():
    np.random.seed(42)  # expect[R001]
    draws = np.random.rand(10)  # expect[R001]
    pick = random.choice([1, 2, 3])  # expect[R001]
    random.shuffle(list(range(4)))  # expect[R001]
    return draws, pick
