"""Suppression fixture: the suppressed rule no longer fires -> stale.

The seed was added during a cleanup but the directive stayed behind;
``repro lint --report-stale`` flags it so dead suppressions cannot pile up.
"""

import numpy as np

rng = np.random.default_rng(20120835)  # repro: lint-ignore[R001] -- fixture: seed was added but the directive stayed behind
