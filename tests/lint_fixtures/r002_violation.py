"""R002 fixture: scipy escaping the deps boundary (parsed, never run)."""

import importlib

import scipy  # expect[R002]
from scipy.sparse import csr_matrix  # expect[R002]


def lazy_but_unguarded():
    import scipy.sparse as sp  # expect[R002]
    return sp


def dynamic_import():
    return importlib.import_module("scipy.sparse.csgraph")  # expect[R002]


def uses_the_imports():
    return scipy, csr_matrix
