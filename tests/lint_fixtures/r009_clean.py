"""R009 fixture: corrected — seeds composed as sequences, not sums."""

from numpy.random import default_rng


def walk_chunks(base_seed, chunks):
    return [
        default_rng([base_seed, index]).integers(0, 10, size=len(chunk))
        for index, chunk in enumerate(chunks)
    ]


def bounded_constant_seed():
    return default_rng(2**32 - 1)
