"""R003 fixture: backend isinstance dispatch outside engine/ and graph/."""

from repro.graph.frozen import FrozenDiGraph, FrozenSAN


def degree_listing(graph):
    if isinstance(graph, FrozenSAN):  # expect[R003]
        return graph.social_out_degrees()
    if isinstance(graph, (FrozenDiGraph, dict)):  # expect[R003]
        return None
    return [graph.degree(node) for node in graph.nodes()]


def class_check(cls):
    return issubclass(cls, FrozenSAN)  # expect[R003]
