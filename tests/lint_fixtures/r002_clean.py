"""R002 fixture: the sanctioned accessors and a probe-guarded lazy import."""

from repro.engine import deps
from repro.engine.deps import have_scipy


def through_the_accessor():
    sparse = deps.scipy_sparse()
    if sparse is None:
        return None
    return sparse.csr_matrix


def guarded_lazy_import():
    if have_scipy():
        from scipy.sparse import csgraph

        return csgraph
    return None


def guarded_via_module_attribute():
    if deps.have_scipy():
        import scipy.sparse as sp

        return sp
    return None
