"""R004 fixture: wall-clock reads inside content-derived code paths."""

import time
from datetime import datetime

from repro.engine import dispatchable, kernel


@kernel("fixture.triangles", backend="frozen")
def triangle_count(graph):
    started = time.perf_counter()  # expect[R004]
    del started
    return 0


@dispatchable("fixture.walk_count")
def walk_count(graph):
    return int(time.time())  # expect[R004]


def scenario_cache_token(scenario):
    stamp = datetime.now().isoformat()  # expect[R004]
    return f"{scenario}-{stamp}"
