"""R005 fixture: a created shared-memory segment with no unlink hook."""

from multiprocessing import shared_memory


class LeakyBuffer:
    def __init__(self, size):
        self._shm = shared_memory.SharedMemory(create=True, size=size)  # expect[R005]

    def view(self):
        return self._shm.buf
