"""R009 fixture: arithmetic seed derivation collides across chunk streams."""

import numpy as np
from numpy.random import default_rng


def walk_chunks(base_seed, chunks):
    streams = []
    for index, chunk in enumerate(chunks):
        rng = default_rng(base_seed + index)  # expect[R009]
        streams.append(rng.integers(0, 10, size=len(chunk)))
    return streams


def legacy_stream(base_seed, index):
    return np.random.RandomState(seed=base_seed * 1000 + index)  # expect[R009]
