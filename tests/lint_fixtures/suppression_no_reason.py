"""Suppression fixture: a reasonless lint-ignore is itself a finding.

The directive below is inert (it suppresses nothing), so the linter reports
both the underlying R001 *and* an R000 for the missing reason.
"""

import numpy as np

rng = np.random.default_rng()  # repro: lint-ignore[R001]
