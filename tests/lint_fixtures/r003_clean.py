"""R003 fixture: the corrected form — registry dispatch, no backend checks.

(Parsed by the linter only; importing it would register throwaway kernels.)
"""

from repro.engine import dispatchable, kernel


@dispatchable("fixture.degree_sum")
def degree_sum(graph):
    return sum(graph.degree(node) for node in graph.nodes())


@kernel("fixture.degree_sum", backend="frozen")
def degree_sum_frozen(graph):
    return int(graph.social_out_degrees().sum())
