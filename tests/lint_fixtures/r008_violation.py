"""R008 fixture: impure pool workers (globals, shared-view writes, closures)."""

from repro.engine import parallel as par

_PROGRESS = {}


def _bad_global_worker(spec, lo, hi):
    views = par.attach_views(spec)
    total = int(views["indices"][lo:hi].sum())
    _PROGRESS[lo] = total  # expect[R008]
    return total


def _bad_view_worker(spec, out_spec, lo, hi):
    views = par.attach_views(spec)
    registers = par.attach_views(out_spec)["registers"]
    registers[lo:hi] = views["indices"][lo:hi]  # expect[R008]
    return hi - lo


def fan_out(spec, out_spec, ranges):
    par.run_chunks(_bad_global_worker, [(spec, lo, hi) for lo, hi in ranges])
    par.run_chunks(_bad_view_worker, [(spec, out_spec, lo, hi) for lo, hi in ranges])
    return par.run_chunks(lambda args: args, [(1,)])  # expect[R008]
