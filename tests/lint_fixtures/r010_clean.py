"""R010 clean fixture: arrays persisted through the columnar boundary, plus
lookalikes the rule must not flag (parsed, never run)."""

import json

import numpy as np

from repro.graph import open_columnar, save_columnar


def persist_frozen(san, path):
    save_columnar(san, path)
    return open_columnar(path, mmap_mode="r")


def reading_is_fine(path):
    # Loading has no hygiene hazard; only ad-hoc *writes* fork the format.
    return np.load(path)


def non_array_io(payload, path):
    # tofile is only flagged as a method call; attribute mentions and
    # ordinary text serialization stay clean.
    method = getattr(payload, "tofile", None)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"has_tofile": method is not None}, handle)
