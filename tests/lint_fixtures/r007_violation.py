"""R007 fixture: artifact builders reading fields cache_token() omits."""

from repro.experiments.artifacts import artifact


class Scenario:
    def __init__(self, config, seed, figure_seed, max_links):
        self.config = config
        self.seed = seed
        self.figure_seed = figure_seed
        self.max_links = max_links

    def snapshot_days(self):
        return list(range(self.config.num_days))

    def cache_token(self):
        return {"config": self.config, "seed": self.seed}


def _walk_budget(scenario):
    return scenario.max_links * 2  # expect[R007]


@artifact("evolution")
def build_evolution(resolver):
    scenario = resolver.scenario
    return (scenario.config, scenario.seed)


@artifact("figures", needs=("evolution",))
def build_figures(resolver):
    days = resolver.scenario.snapshot_days()
    seed = resolver.scenario.figure_seed  # expect[R007]
    budget = _walk_budget(resolver.scenario)
    return (days, seed, budget)
