"""R008 fixture: corrected — pure workers, explicit output buffers."""

from repro.engine import parallel as par


def _pure_worker(spec, out_spec, lo, hi):
    views = par.attach_views(spec)
    merged = views["indices"][lo:hi].copy()
    out = par.attach_output_views(out_spec)["registers"]
    out[lo:hi] = merged
    return int(merged.sum())


def fan_out(spec, out_spec, ranges):
    return par.run_chunks(
        _pure_worker, [(spec, out_spec, lo, hi) for lo, hi in ranges]
    )
