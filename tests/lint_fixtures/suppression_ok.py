"""Suppression fixture: a justified lint-ignore silences the finding."""

import numpy as np

entropy_rng = np.random.default_rng()  # repro: lint-ignore[R001] -- fixture: deliberate entropy source with a written reason

# repro: lint-ignore[R001] -- fixture: standalone directive whose multi-line
# justification still covers the assignment below
another_entropy_rng = np.random.default_rng()
