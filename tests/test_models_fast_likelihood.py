"""Tests for the vectorized attachment-likelihood engine and its routing."""

import pytest

from repro.engine import registry as engine_registry
from repro.graph import SAN
from repro.models import (
    ATTACHMENT_LIKELIHOOD_OP,
    ArrivalHistory,
    AttachmentModelSpec,
    SANModelParameters,
    encode_history,
    evaluate_attachment_models,
    evaluate_attachment_models_fast,
    evaluate_attachment_models_loop,
    figure15_specs,
    figure15_sweep,
    generate_san,
    generate_san_fast,
)


@pytest.fixture(scope="module")
def generated_history():
    """A model-generated history with realistic attribute communities."""
    return generate_san(
        SANModelParameters(steps=350), rng=17, record_history=True
    ).history


@pytest.fixture(scope="module")
def fast_generated_history():
    """The vectorized generator's decoded event log (integer labels)."""
    return generate_san_fast(
        SANModelParameters(steps=300), rng=23, record_history=True
    ).history()


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def test_encode_history_counts(generated_history):
    encoded = encode_history(generated_history)
    assert encoded.num_events == len(generated_history.events)
    assert encoded.social_src.size == generated_history.num_social_links()
    final = generated_history.final_san()
    assert encoded.num_nodes == final.number_of_social_nodes()
    assert encoded.num_attributes == final.number_of_attribute_nodes()
    # Membership CSRs are two transposes of the same link set.
    assert encoded.node_attr_ids.size == encoded.attr_member_ids.size
    assert encoded.node_attr_ids.size == final.number_of_attribute_edges()
    # The update stream contains one registration per non-initial node plus
    # one degree increment per distinct social edge gained during the events.
    registrations = int((encoded.update_old_degree < 0).sum())
    assert registrations == encoded.num_nodes - encoded.num_initial_nodes
    increments = int((encoded.update_old_degree >= 0).sum())
    assert increments == encoded.gain_comp.size


def test_encode_tracks_degrees_and_eligibility():
    initial = SAN()
    for node in range(2):
        initial.add_social_node(node)
    initial.add_social_edge(0, 1)
    history = ArrivalHistory(initial=initial)
    history.record_social_link(1, 0)   # eligible; target degree 0
    history.record_social_link(1, 0)   # duplicate
    history.record_node(2)
    history.record_social_link(2, 1)   # eligible; target degree 1 already
    history.record_social_link(2, 2)   # self loop: counted, not eligible
    encoded = encode_history(history)
    assert encoded.social_eligible.tolist() == [True, False, True, False]
    assert encoded.social_dst_degree.tolist() == [0, 1, 1, 0]
    # Each scoring point counts every registration and degree increment
    # applied before it (including its own event's registrations).
    assert encoded.social_update_count.tolist() == [0, 1, 2, 3]
    assert encoded.update_old_degree.tolist() == [0, -1, 1, 0]


def test_encode_attribute_rich_initial_san_no_key_collisions():
    """Regression: attribute ids exceed the social-id stride in snapshots
    with many attributes and few events — membership dedup keys must use an
    attribute-sized stride or distinct memberships collide and are dropped."""
    initial = SAN()
    for node in range(3):
        initial.add_social_node(node)
    initial.add_social_edge(0, 1)
    # Far more attribute nodes than social nodes + 2 * events + 1.
    for value in range(8):
        initial.add_attribute_edge(value % 3, f"f{value}", attr_type="t")
    initial.add_attribute_edge(1, "X", attr_type="t")
    initial.add_attribute_edge(2, "X", attr_type="t")
    history = ArrivalHistory(initial=initial)
    history.record_social_link(0, 2)
    encoded = encode_history(history)
    assert encoded.node_attr_ids.size == initial.number_of_attribute_edges()

    spec = AttachmentModelSpec(kind="lapa", alpha=1.0, beta=100.0, label="m")
    loop = evaluate_attachment_models_loop(history, [spec], max_links=None)
    fast = evaluate_attachment_models_fast(history, [spec], max_links=None)
    assert fast.log_likelihoods["m"] == pytest.approx(
        loop.log_likelihoods["m"], rel=1e-12
    )


# ----------------------------------------------------------------------
# Engine-registry routing
# ----------------------------------------------------------------------
def test_both_backends_registered():
    backends = {
        kernel.backend
        for kernel in engine_registry.kernels_for(ATTACHMENT_LIKELIHOOD_OP)
    }
    assert {"loop", "vectorized"} <= backends
    selected = engine_registry.select(ATTACHMENT_LIKELIHOOD_OP, "vectorized")
    assert selected is not None and selected.fn is evaluate_attachment_models_fast


def test_unknown_engine_raises(generated_history):
    with pytest.raises(engine_registry.NoKernelError, match="registered engines"):
        evaluate_attachment_models(
            generated_history,
            [AttachmentModelSpec(kind="pa", alpha=1.0)],
            engine="gpu",
        )


def test_auto_routes_to_vectorized(generated_history):
    specs = [AttachmentModelSpec(kind="lapa", alpha=1.0, beta=50.0, label="m")]
    auto = evaluate_attachment_models(
        generated_history, specs, max_links=200, rng=3, engine="auto"
    )
    fast = evaluate_attachment_models_fast(
        generated_history, specs, max_links=200, rng=3
    )
    assert auto.log_likelihoods == fast.log_likelihoods
    assert auto.num_links_scored == fast.num_links_scored


# ----------------------------------------------------------------------
# Cross-backend parity on generated histories
# ----------------------------------------------------------------------
@pytest.mark.parametrize("history_fixture", ["generated_history", "fast_generated_history"])
def test_subsampled_parity_between_backends(history_fixture, request):
    """Same seed => identical scored-link set and matching log-likelihoods."""
    history = request.getfixturevalue(history_fixture)
    specs = figure15_specs(
        alphas=(0.0, 0.5, 1.0, 2.0), papa_betas=(0.0, 2.0), lapa_betas=(0.0, 100.0)
    )
    loop = evaluate_attachment_models_loop(history, specs, max_links=250, rng=41)
    fast = evaluate_attachment_models_fast(history, specs, max_links=250, rng=41)
    assert loop.num_links_scored == fast.num_links_scored
    assert set(loop.log_likelihoods) == set(fast.log_likelihoods)
    for name, value in loop.log_likelihoods.items():
        assert fast.log_likelihoods[name] == pytest.approx(value, rel=1e-9, abs=1e-9)


def test_different_seeds_select_different_links(generated_history):
    specs = [AttachmentModelSpec(kind="pa", alpha=1.0)]
    first = evaluate_attachment_models_fast(
        generated_history, specs, max_links=200, rng=1
    )
    second = evaluate_attachment_models_fast(
        generated_history, specs, max_links=200, rng=2
    )
    assert (
        first.num_links_scored != second.num_links_scored
        or first.log_likelihoods != second.log_likelihoods
    )


# ----------------------------------------------------------------------
# Determinism (the seed-threading bugfix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["loop", "vectorized"])
def test_same_seed_sweeps_identical(generated_history, engine):
    kwargs = dict(
        alphas=(0.0, 1.0),
        papa_betas=(0.0, 2.0),
        lapa_betas=(0.0, 100.0),
        max_links=200,
        engine=engine,
    )
    first = figure15_sweep(generated_history, rng=9, **kwargs)
    second = figure15_sweep(generated_history, rng=9, **kwargs)
    assert first == second


def test_default_seed_is_deterministic(generated_history):
    """Calling without any rng must be reproducible (regression: the old
    default drew from system entropy)."""
    specs = [AttachmentModelSpec(kind="pa", alpha=1.0)]
    first = evaluate_attachment_models(generated_history, specs, max_links=150)
    second = evaluate_attachment_models(generated_history, specs, max_links=150)
    assert first.num_links_scored == second.num_links_scored
    assert first.log_likelihoods == second.log_likelihoods
