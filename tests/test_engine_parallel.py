"""Parallel kernel tier: shared-memory lifecycle, dispatch gating,
frozen/parallel bit-identity, and the process-based pipeline executor.

Everything here forces the tier on with ``REPRO_MAX_WORKERS=2`` so the
tests are meaningful on single-core CI runners too (the pool is merely
oversubscribed); correctness never depends on the core count.
"""

from __future__ import annotations

import gc
import json
import os

import numpy as np
import pytest

from repro import engine
from repro.algorithms.clustering import (
    average_attribute_clustering_coefficient,
    average_social_clustering_coefficient,
    clustering_by_degree,
)
from repro.algorithms.hyperanf import neighbourhood_function
from repro.algorithms.random_walk import random_walks
from repro.algorithms.triangles import count_directed_triangles
from repro.applications.link_prediction import rank_candidate_pairs
from repro.engine import deps, parallel
from repro.engine.registry import FROZEN, PARALLEL, kernels_for, list_ops, resolve
from repro.experiments.runner import (
    PipelineStageError,
    canonical_json,
    run_pipeline,
)


def _shm_leftovers():
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return [
        name
        for name in os.listdir(shm_dir)
        if name.startswith(parallel.SEGMENT_PREFIX)
    ]


@pytest.fixture
def two_workers(monkeypatch):
    """Force the tier available (two workers) and guarantee cleanup:
    after every test no segment may stay registered or on /dev/shm.

    Clears an ambient ``REPRO_NO_PARALLEL`` (the CI leg that pins the
    single-core kernels still runs this file; here the tier itself is under
    test) — monkeypatch restores it afterwards."""
    monkeypatch.delenv(parallel.DISABLE_ENV_VAR, raising=False)
    monkeypatch.setenv(parallel.MAX_WORKERS_ENV_VAR, "2")
    yield
    engine.configure()
    parallel.shutdown()
    assert parallel.live_segment_names() == []
    assert _shm_leftovers() == []


# ----------------------------------------------------------------------
# Shared-memory lifecycle
# ----------------------------------------------------------------------


def _echo_field(spec, field):
    """Worker-side: copy one attached view back to the parent."""
    return parallel.attach_views(spec)[field].copy()


def _boom(lo, hi):
    raise ValueError(f"boom {lo}:{hi}")


class TestSharedMemoryLifecycle:
    def test_shared_csr_roundtrip_and_unlink(self):
        arrays = {
            "indptr": np.arange(11, dtype=np.int64),
            "weights": np.linspace(0.0, 1.0, 7),
        }
        shared = parallel.SharedCSR(arrays)
        try:
            assert shared.spec.name in parallel.live_segment_names()
            views = parallel.attach_views(shared.spec)
            for field, array in arrays.items():
                assert views[field].dtype == array.dtype
                assert np.array_equal(views[field], array)
            del views
        finally:
            shared.unlink()
        assert shared.spec.name not in parallel.live_segment_names()
        assert _shm_leftovers() == []

    def test_unlink_is_idempotent(self):
        shared = parallel.SharedCSR({"a": np.zeros(3)})
        shared.unlink()
        shared.unlink()  # second call is a no-op, not an error
        assert _shm_leftovers() == []

    def test_shutdown_unlinks_every_live_segment(self):
        parallel.SharedCSR({"a": np.ones(5)})
        parallel.SharedCSR({"b": np.ones(6)})
        assert len(parallel.live_segment_names()) >= 2
        parallel.shutdown()
        assert parallel.live_segment_names() == []
        assert _shm_leftovers() == []

    def test_segment_released_when_graph_is_collected(self, tiny_final_san):
        frozen = tiny_final_san.freeze()
        spec = parallel.shared_undirected_csr(frozen.social)
        assert spec.name in parallel.live_segment_names()
        # Exporting again for the same graph reuses the segment.
        assert parallel.shared_undirected_csr(frozen.social).name == spec.name
        del frozen
        gc.collect()
        assert spec.name not in parallel.live_segment_names()
        assert _shm_leftovers() == []

    def test_worker_sees_bit_identical_views(self, two_workers, tiny_final_san):
        frozen = tiny_final_san.freeze()
        indptr, indices = frozen.social.undirected_csr()
        spec = parallel.shared_undirected_csr(frozen.social)
        echoed_indptr, echoed_indices = parallel.run_chunks(
            _echo_field, [(spec, "indptr"), (spec, "indices")]
        )
        assert echoed_indptr.dtype == indptr.dtype
        assert echoed_indices.dtype == indices.dtype
        assert np.array_equal(echoed_indptr, indptr)
        assert np.array_equal(echoed_indices, indices)

    def test_worker_exception_leaves_no_segments(self, two_workers, tiny_final_san):
        frozen = tiny_final_san.freeze()
        parallel.shared_undirected_csr(frozen.social)
        with pytest.raises(ValueError, match="boom"):
            parallel.run_chunks(_boom, [(0, 1), (1, 2)])
        # two_workers teardown asserts shutdown() leaves nothing behind.


# ----------------------------------------------------------------------
# Dispatch gating
# ----------------------------------------------------------------------

#: Parallel kernels that only need the pool (no scipy).
POOL_ONLY_OPS = ("count_directed_triangles", "neighbourhood_function", "random_walks")


def _parallel_ops():
    return [
        op
        for op in list_ops()
        if any(entry.backend == PARALLEL for entry in kernels_for(op))
    ]


class TestDispatchGating:
    def test_expected_ops_register_parallel_kernels(self):
        ops = set(_parallel_ops())
        assert {
            "count_directed_triangles",
            "average_social_clustering_coefficient",
            "average_attribute_clustering_coefficient",
            "clustering_by_degree",
            "neighbourhood_function",
            "random_walks",
            "link_prediction.rank_candidate_pairs",
        } <= ops

    def test_disable_env_forces_frozen_on_every_parallel_op(
        self, two_workers, monkeypatch, tiny_final_san
    ):
        frozen = tiny_final_san.freeze()
        engine.configure(parallel_threshold=0)
        monkeypatch.setenv(parallel.DISABLE_ENV_VAR, "1")
        for op in _parallel_ops():
            # Never the parallel tier; the scipy-gated ops may fall past
            # frozen to mutable when scipy is also disabled.
            assert resolve(op, frozen).backend != PARALLEL, op
        for op in POOL_ONLY_OPS:
            assert resolve(op, frozen).backend == FROZEN, op
        monkeypatch.delenv(parallel.DISABLE_ENV_VAR)
        for op in POOL_ONLY_OPS:
            assert resolve(op, frozen).backend == PARALLEL, op
        if deps.have_scipy():
            assert (
                resolve("link_prediction.rank_candidate_pairs", frozen).backend
                == PARALLEL
            )

    def test_size_threshold_gates_the_tier(self, two_workers, tiny_final_san):
        frozen = tiny_final_san.freeze()
        engine.configure(parallel_threshold=10**9)
        assert resolve("count_directed_triangles", frozen).backend == FROZEN
        engine.configure(parallel_threshold=0)
        assert resolve("count_directed_triangles", frozen).backend == PARALLEL
        engine.configure(parallel_threshold=None)
        assert resolve("count_directed_triangles", frozen).backend == FROZEN

    def test_single_worker_keeps_tier_unavailable(self, monkeypatch):
        monkeypatch.delenv(parallel.DISABLE_ENV_VAR, raising=False)
        monkeypatch.setenv(parallel.MAX_WORKERS_ENV_VAR, "1")
        assert not parallel.parallel_available()
        monkeypatch.setenv(parallel.MAX_WORKERS_ENV_VAR, "2")
        assert parallel.parallel_available()
        monkeypatch.setenv(parallel.DISABLE_ENV_VAR, "1")
        assert not parallel.parallel_available()


# ----------------------------------------------------------------------
# Bit-identity: every parallel kernel equals its frozen counterpart
# ----------------------------------------------------------------------


class TestBitIdentity:
    def _both_tiers(self, monkeypatch, fn, san):
        """Run ``fn`` on the frozen tier and on the parallel tier.

        Separate frozen views per tier: the clustering kernels memoize
        their arrays on the FrozenSAN, so sharing one view would let the
        first tier's memo answer for the second.
        """
        monkeypatch.setenv(parallel.DISABLE_ENV_VAR, "1")
        expected = fn(san.freeze())
        monkeypatch.delenv(parallel.DISABLE_ENV_VAR)
        engine.configure(parallel_threshold=0)
        actual = fn(san.freeze())
        engine.configure()
        return expected, actual

    def test_triangles(self, two_workers, monkeypatch, tiny_final_san):
        expected, actual = self._both_tiers(
            monkeypatch, count_directed_triangles, tiny_final_san
        )
        assert actual == expected

    def test_clustering(self, two_workers, monkeypatch, tiny_final_san):
        for fn in (
            average_social_clustering_coefficient,
            average_attribute_clustering_coefficient,
            lambda g: clustering_by_degree(g, kind="social"),
            lambda g: clustering_by_degree(g, kind="attribute"),
        ):
            expected, actual = self._both_tiers(monkeypatch, fn, tiny_final_san)
            assert actual == expected

    def test_hyperanf(self, two_workers, monkeypatch, tiny_final_san):
        expected, actual = self._both_tiers(
            monkeypatch,
            lambda g: neighbourhood_function(g.social, precision=6),
            tiny_final_san,
        )
        assert actual == expected  # exact: same registers, same merges

    def test_random_walks(self, two_workers, monkeypatch, tiny_final_san):
        starts = list(tiny_final_san.social_nodes())[:80]
        for cap in (None, 5):
            expected, actual = self._both_tiers(
                monkeypatch,
                lambda g: random_walks(
                    g.social, starts, length=12, degree_cap=cap, rng=20120835
                ),
                tiny_final_san,
            )
            assert actual == expected

    def test_rank_candidate_pairs(self, two_workers, monkeypatch, tiny_final_san):
        if not deps.have_scipy():
            pytest.skip("parallel ranking kernel requires scipy")
        for metric in ("common_neighbors", "adamic_adar"):
            expected, actual = self._both_tiers(
                monkeypatch,
                lambda g: rank_candidate_pairs(g, top_k=150, metric=metric),
                tiny_final_san,
            )
            assert actual == expected  # exact floats included


# ----------------------------------------------------------------------
# Process-based pipeline stage executor
# ----------------------------------------------------------------------

#: Small stage subset whose artifact closure stays cheap on "tiny".
EXECUTOR_FIGURES = ("fig02_03", "sec22", "fig05")


@pytest.fixture(scope="module")
def executor_cache(tmp_path_factory):
    return tmp_path_factory.mktemp("executor-cache")


@pytest.fixture(scope="module")
def thread_run(executor_cache):
    return run_pipeline(
        "tiny", figures=EXECUTOR_FIGURES, cache_dir=executor_cache, executor="thread"
    )


class TestProcessExecutor:
    def test_process_payloads_match_thread(self, thread_run, executor_cache):
        result = run_pipeline(
            "tiny",
            figures=EXECUTOR_FIGURES,
            cache_dir=executor_cache,
            jobs=2,
            executor="process",
        )
        assert result.executor == "process"
        assert thread_run.executor == "thread"
        for name in EXECUTOR_FIGURES:
            assert canonical_json(result.stages[name].payload) == canonical_json(
                thread_run.stages[name].payload
            )
        # Warm process run rebuilt nothing: workers rehydrated from disk.
        assert result.recomputed_persistent_artifacts() == []

    def test_auto_prefers_processes_with_cache_and_jobs(self, thread_run, executor_cache):
        result = run_pipeline(
            "tiny", figures=EXECUTOR_FIGURES, cache_dir=executor_cache, jobs=2
        )
        assert result.executor == "process"
        memory_only = run_pipeline("tiny", figures=EXECUTOR_FIGURES, jobs=2)
        assert memory_only.executor == "thread"

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_pipeline("tiny", figures=EXECUTOR_FIGURES, executor="gpu")

    def test_cpu_seconds_recorded_in_manifest(self, tmp_path, thread_run, executor_cache):
        out = tmp_path / "out"
        result = run_pipeline(
            "tiny",
            figures=EXECUTOR_FIGURES,
            cache_dir=executor_cache,
            jobs=2,
            executor="process",
            out_dir=out,
        )
        manifest = json.loads((out / "manifest.json").read_text(encoding="utf-8"))
        assert manifest["executor"] == "process"
        for stage in manifest["stages"]:
            assert stage["error"] is None
            assert stage["cpu_seconds"] >= 0.0
        assert result.failures() == {}


class TestFailureCollection:
    @pytest.fixture
    def boom_stage(self, monkeypatch):
        """Replace one stage's function with a deterministic failure.

        The runner (and its process workers) look stages up through
        ``repro.experiments.runner.experiment_stages``; patch that symbol —
        patching the registry module would not reach the direct import.
        """
        from dataclasses import replace

        from repro.experiments.runner import experiment_stages as real_stages

        def boom(*args, **kwargs):
            raise ValueError("intentional boom")

        def patched():
            stages = dict(real_stages())
            stages["fig02_03"] = replace(stages["fig02_03"], fn=boom)
            return stages

        monkeypatch.setattr("repro.experiments.runner.experiment_stages", patched)
        return patched

    def test_strict_raises_after_writing_outputs(self, tmp_path, boom_stage, executor_cache):
        out = tmp_path / "out"
        with pytest.raises(PipelineStageError) as excinfo:
            run_pipeline(
                "tiny",
                figures=EXECUTOR_FIGURES,
                cache_dir=executor_cache,
                out_dir=out,
            )
        assert set(excinfo.value.failures) == {"fig02_03"}
        assert "intentional boom" in excinfo.value.failures["fig02_03"]
        # Outputs were written before the raise; survivors are intact.
        manifest = json.loads((out / "manifest.json").read_text(encoding="utf-8"))
        by_name = {stage["name"]: stage for stage in manifest["stages"]}
        assert by_name["fig02_03"]["error"] == "ValueError: intentional boom"
        for name in ("sec22", "fig05"):
            assert by_name[name]["error"] is None
            assert (out / f"{name}.txt").read_text(encoding="utf-8").strip()

    def test_non_strict_returns_failures(self, boom_stage, executor_cache):
        result = run_pipeline(
            "tiny",
            figures=EXECUTOR_FIGURES,
            cache_dir=executor_cache,
            strict=False,
        )
        assert result.failures() == {"fig02_03": "ValueError: intentional boom"}
        assert result.stages["fig02_03"].payload is None
        assert result.stages["fig02_03"].rendered == ""
        for name in ("sec22", "fig05"):
            assert result.stages[name].error is None
            assert result.stages[name].payload is not None

    def test_process_executor_collects_failures(self, boom_stage, executor_cache):
        result = run_pipeline(
            "tiny",
            figures=EXECUTOR_FIGURES,
            cache_dir=executor_cache,
            jobs=2,
            executor="process",
            strict=False,
        )
        assert result.executor == "process"
        assert result.failures() == {"fig02_03": "ValueError: intentional boom"}
        for name in ("sec22", "fig05"):
            assert result.stages[name].error is None
