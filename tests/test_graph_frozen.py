"""Unit tests for the frozen CSR-backed graph backends."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.graph import (
    SAN,
    DiGraph,
    DiGraphView,
    FrozenDiGraph,
    FrozenGraphError,
    FrozenSAN,
    NodeNotFoundError,
    SANView,
    load_san_json,
    load_san_tsv,
    san_from_edge_lists,
    save_san_json,
    save_san_tsv,
)


def random_digraph(seed: int, nodes: int = 40, edges: int = 160) -> DiGraph:
    rng = random.Random(seed)
    graph = DiGraph()
    for node in range(nodes):
        graph.add_node(node)
    for _ in range(edges):
        graph.add_edge(rng.randrange(nodes), rng.randrange(nodes))
    return graph


class TestFrozenDiGraph:
    def test_preserves_counts_and_edges(self):
        graph = random_digraph(1)
        frozen = graph.freeze()
        assert frozen.number_of_nodes() == graph.number_of_nodes()
        assert frozen.number_of_edges() == graph.number_of_edges()
        assert set(frozen.edges()) == set(graph.edges())
        assert list(frozen.nodes()) == list(graph.nodes())

    def test_neighborhoods_match_mutable(self):
        graph = random_digraph(2)
        frozen = graph.freeze()
        for node in graph.nodes():
            assert frozen.successors(node) == graph.successors(node)
            assert frozen.predecessors(node) == graph.predecessors(node)
            assert frozen.neighbors(node) == graph.neighbors(node)
            assert frozen.out_degree(node) == graph.out_degree(node)
            assert frozen.in_degree(node) == graph.in_degree(node)
            assert frozen.degree(node) == graph.degree(node)

    def test_has_edge_and_reciprocity(self):
        graph = DiGraph([(1, 2), (2, 1), (2, 3)])
        frozen = graph.freeze()
        assert frozen.has_edge(1, 2) and frozen.has_edge(2, 3)
        assert not frozen.has_edge(3, 2)
        assert not frozen.has_edge(99, 1) and not frozen.has_edge(1, 99)
        assert frozen.is_reciprocal(1, 2)
        assert not frozen.is_reciprocal(2, 3)

    def test_missing_node_raises(self):
        frozen = DiGraph([(1, 2)]).freeze()
        with pytest.raises(NodeNotFoundError):
            frozen.successors(99)
        with pytest.raises(NodeNotFoundError):
            frozen.index_of(99)

    def test_mutation_raises_frozen_error(self):
        frozen = DiGraph([(1, 2)]).freeze()
        with pytest.raises(FrozenGraphError):
            frozen.add_edge(2, 3)
        with pytest.raises(FrozenGraphError):
            frozen.add_node(5)
        with pytest.raises(FrozenGraphError):
            frozen.remove_edge(1, 2)
        with pytest.raises(FrozenGraphError):
            frozen.remove_node(1)

    def test_freeze_is_snapshot(self):
        graph = DiGraph([(1, 2)])
        frozen = graph.freeze()
        graph.add_edge(2, 3)
        assert frozen.number_of_edges() == 1
        assert not frozen.has_edge(2, 3)

    def test_thaw_round_trip(self):
        graph = random_digraph(3)
        thawed = graph.freeze().thaw()
        assert set(thawed.edges()) == set(graph.edges())
        assert list(thawed.nodes()) == list(graph.nodes())
        thawed.add_edge(999, 1000)  # mutable again
        assert thawed.has_edge(999, 1000)

    def test_reverse_swaps_directions(self):
        graph = random_digraph(4)
        reversed_frozen = graph.freeze().reverse()
        assert set(reversed_frozen.edges()) == {(t, s) for s, t in graph.edges()}

    def test_to_undirected_adjacency_matches(self):
        graph = random_digraph(5)
        assert graph.freeze().to_undirected_adjacency() == graph.to_undirected_adjacency()

    def test_self_loop_kept_in_undirected_adjacency(self):
        graph = DiGraph([(1, 1), (1, 2)])
        frozen = graph.freeze()
        assert frozen.to_undirected_adjacency() == graph.to_undirected_adjacency()
        # ... but excluded from the neighbor view, as in the mutable backend.
        assert frozen.neighbors(1) == graph.neighbors(1) == {2}

    def test_subgraph(self):
        graph = random_digraph(6)
        keep = list(range(0, 20))
        induced = graph.freeze().subgraph(keep)
        expected = graph.subgraph(keep)
        assert isinstance(induced, FrozenDiGraph)
        assert set(induced.edges()) == set(expected.edges())

    def test_copy_and_freeze_idempotent(self):
        frozen = random_digraph(7).freeze()
        assert frozen.copy() is frozen
        assert frozen.freeze() is frozen

    def test_csr_invariants(self):
        frozen = random_digraph(8).freeze()
        for indptr, indices in (frozen.out_csr(), frozen.in_csr(), frozen.undirected_csr()):
            assert indptr[0] == 0
            assert indptr[-1] == indices.size
            for i in range(len(indptr) - 1):
                row = indices[indptr[i] : indptr[i + 1]]
                assert np.all(np.diff(row) > 0)  # sorted, duplicate-free

    def test_empty_graph(self):
        frozen = DiGraph().freeze()
        assert frozen.number_of_nodes() == 0
        assert frozen.number_of_edges() == 0
        assert list(frozen.edges()) == []
        assert frozen.undirected_degree_array().size == 0


class TestFrozenSAN:
    def test_read_api_matches_mutable(self, figure1_san):
        frozen = figure1_san.freeze()
        assert frozen.summary() == figure1_san.summary()
        assert set(frozen.social_edges()) == set(figure1_san.social_edges())
        assert set(frozen.attribute_edges()) == set(figure1_san.attribute_edges())
        for node in figure1_san.social_nodes():
            assert frozen.social_out_neighbors(node) == figure1_san.social_out_neighbors(node)
            assert frozen.social_in_neighbors(node) == figure1_san.social_in_neighbors(node)
            assert frozen.social_neighbors(node) == figure1_san.social_neighbors(node)
            assert frozen.attribute_neighbors(node) == figure1_san.attribute_neighbors(node)
            assert frozen.attribute_degree(node) == figure1_san.attribute_degree(node)
        for attribute in figure1_san.attribute_nodes():
            assert frozen.social_neighbors(attribute) == figure1_san.social_neighbors(attribute)
            assert frozen.attribute_social_degree(attribute) == figure1_san.attribute_social_degree(attribute)
            assert frozen.attribute_info(attribute) == figure1_san.attribute_info(attribute)

    def test_common_neighbor_queries(self, figure1_san):
        frozen = figure1_san.freeze()
        nodes = list(figure1_san.social_nodes())
        for first in nodes:
            for second in nodes:
                if first == second:
                    continue
                assert frozen.common_attributes(first, second) == figure1_san.common_attributes(first, second)
                assert frozen.common_social_neighbors(first, second) == figure1_san.common_social_neighbors(first, second)

    def test_mutation_raises(self, figure1_san):
        frozen = figure1_san.freeze()
        with pytest.raises(FrozenGraphError):
            frozen.add_social_edge(10, 11)
        with pytest.raises(FrozenGraphError):
            frozen.add_attribute_edge(1, "city:Z")
        with pytest.raises(FrozenGraphError):
            frozen.attributes.add_link(1, "city:Z")

    def test_thaw_round_trip(self, figure1_san):
        rebuilt = figure1_san.freeze().thaw()
        assert isinstance(rebuilt, SAN)
        assert rebuilt.summary() == figure1_san.summary()
        assert set(rebuilt.social_edges()) == set(figure1_san.social_edges())
        assert set(rebuilt.attribute_edges()) == set(figure1_san.attribute_edges())
        for attribute in figure1_san.attribute_nodes():
            assert rebuilt.attribute_info(attribute) == figure1_san.attribute_info(attribute)

    def test_social_subgraph(self, figure1_san):
        frozen_sub = figure1_san.freeze().social_subgraph([1, 2, 3])
        expected = figure1_san.social_subgraph([1, 2, 3])
        assert isinstance(frozen_sub, FrozenSAN)
        assert frozen_sub.summary() == expected.summary()
        assert set(frozen_sub.social_edges()) == set(expected.social_edges())

    def test_attribute_type_queries(self, figure1_san):
        frozen = figure1_san.freeze()
        assert frozen.attributes.attribute_types() == figure1_san.attributes.attribute_types()
        for attr_type in figure1_san.attributes.attribute_types():
            assert list(frozen.attributes.attribute_nodes_of_type(attr_type)) == list(
                figure1_san.attributes.attribute_nodes_of_type(attr_type)
            )


class TestProtocols:
    def test_both_backends_satisfy_protocols(self, figure1_san):
        assert isinstance(figure1_san, SANView)
        assert isinstance(figure1_san.freeze(), SANView)
        assert isinstance(figure1_san.social, DiGraphView)
        assert isinstance(figure1_san.freeze().social, DiGraphView)

    def test_non_graph_rejected(self):
        assert not isinstance(object(), SANView)
        assert not isinstance(object(), DiGraphView)


class TestFrozenSerialization:
    def test_tsv_round_trip_frozen(self, figure1_san, tmp_path):
        frozen = figure1_san.freeze()
        social, attrs = tmp_path / "social.tsv", tmp_path / "attrs.tsv"
        save_san_tsv(frozen, social, attrs)
        loaded = load_san_tsv(social, attrs, frozen=True)
        assert isinstance(loaded, FrozenSAN)
        assert loaded.summary() == frozen.summary()
        assert set(loaded.social_edges()) == set(frozen.social_edges())
        assert set(loaded.attribute_edges()) == set(frozen.attribute_edges())

    def test_json_round_trip_frozen(self, figure1_san, tmp_path):
        path = tmp_path / "san.json"
        save_san_json(figure1_san.freeze(), path)
        loaded = load_san_json(path, frozen=True)
        assert isinstance(loaded, FrozenSAN)
        assert loaded.summary() == figure1_san.summary()

    def test_loaders_default_to_mutable(self, figure1_san, tmp_path):
        path = tmp_path / "san.json"
        save_san_json(figure1_san, path)
        assert isinstance(load_san_json(path), SAN)


def test_frozen_san_from_builder_edge_lists():
    san = san_from_edge_lists(
        [(1, 2), (2, 1)], [(1, "employer", "Google"), (2, "employer", "Google")]
    )
    frozen = san.freeze()
    assert frozen.common_attributes(1, 2) == san.common_attributes(1, 2)
    assert frozen.social.is_reciprocal(1, 2)


class TestFromEdgeArrays:
    def _reference(self):
        social_edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 1)]
        attribute_records = [
            (0, "employer", "Google"),
            (1, "employer", "Google"),
            (2, "city", "SF"),
        ]
        return san_from_edge_lists(social_edges, attribute_records)

    def _from_arrays(self):
        from repro.graph.bipartite import AttributeInfo

        src = np.array([0, 1, 1, 2, 3], dtype=np.int64)
        dst = np.array([1, 0, 2, 3, 1], dtype=np.int64)
        attr_labels = ["employer:Google", "city:SF"]
        attr_info = [
            AttributeInfo(attr_type="employer", value="Google"),
            AttributeInfo(attr_type="city", value="SF"),
        ]
        link_social = np.array([0, 1, 2], dtype=np.int64)
        link_attr = np.array([0, 0, 1], dtype=np.int64)
        return FrozenSAN.from_edge_arrays(
            [0, 1, 2, 3], src, dst, attr_labels, attr_info, link_social, link_attr
        )

    def test_matches_frozen_reference(self):
        reference = self._reference().freeze()
        built = self._from_arrays()
        assert built.summary() == reference.summary()
        for source, target in reference.social_edges():
            assert built.has_social_edge(source, target)
        for social, attribute in reference.attribute_edges():
            assert built.has_attribute_edge(social, attribute)
            assert built.attribute_info(attribute) == reference.attribute_info(attribute)
        for node in reference.social_nodes():
            assert built.social_in_degree(node) == reference.social_in_degree(node)
            assert built.social_out_degree(node) == reference.social_out_degree(node)

    def test_rows_are_sorted(self):
        built = self._from_arrays()
        indptr, indices = built.social.out_csr()
        for row in range(len(indptr) - 1):
            segment = indices[indptr[row] : indptr[row + 1]]
            assert np.all(np.diff(segment) >= 0)

    def test_thaw_round_trip(self):
        built = self._from_arrays()
        assert built.thaw().summary() == built.summary()

    def test_empty_arrays(self):
        empty = np.empty(0, dtype=np.int64)
        built = FrozenSAN.from_edge_arrays([0, 1], empty, empty, [], [], empty, empty)
        assert built.number_of_social_nodes() == 2
        assert built.number_of_social_edges() == 0
        assert built.number_of_attribute_nodes() == 0
