"""Integration tests: the full measurement pipeline on a simulated crawl.

These exercise the end-to-end flow the paper's measurement sections follow —
simulate Google+ growth, crawl daily snapshots, compute the Section 3 and
Section 4 metrics — and assert the *qualitative* findings the paper reports
(the shapes, not the absolute values).
"""

import pytest

from repro.fitting import fit_lognormal, fit_power_law, lognormal_vs_power_law
from repro.metrics import (
    attribute_clustering_by_type,
    attribute_declaration_fraction,
    attribute_degrees_of_social_nodes,
    degree_by_top_attribute_values,
    fine_grained_reciprocity,
    growth_series,
    reciprocity_series,
    social_degrees_of_attribute_nodes,
    social_density_series,
    social_out_degrees,
)
from repro.metrics.influence import reciprocity_boost_from_attributes


def test_crawled_snapshot_sequence_grows(tiny_snapshots):
    series = growth_series(list(tiny_snapshots))
    for key, points in series.items():
        values = [value for _, value in points]
        assert values[-1] >= values[0]


def test_reciprocity_declines_from_phase_one_to_phase_three(tiny_snapshots, tiny_evolution):
    series = reciprocity_series(list(tiny_snapshots))
    phases = tiny_evolution.phases
    phase1_values = [v for day, v in series if phases.phase_of(day) == 1 and v > 0]
    phase3_values = [v for day, v in series if phases.phase_of(day) == 3]
    assert phase1_values and phase3_values
    assert min(phase1_values) > max(phase3_values) - 0.05


def test_social_density_growth_slows_at_public_release(tiny_snapshots, tiny_evolution):
    """Phase III brings a surge of new low-degree users, so the per-day density
    growth drops relative to the stabilised phase II (the Figure 4b shape)."""
    series = social_density_series(list(tiny_snapshots))
    phases = tiny_evolution.phases
    phase2 = [(day, v) for day, v in series if phases.phase_of(day) == 2]
    phase3 = [(day, v) for day, v in series if phases.phase_of(day) == 3]
    assert len(phase2) >= 2 and len(phase3) >= 2

    def growth_rate(points):
        points = sorted(points)
        return (points[-1][1] - points[0][1]) / max(points[-1][0] - points[0][0], 1)

    assert growth_rate(phase3) < growth_rate(phase2)


def test_out_degrees_prefer_lognormal_over_power_law(tiny_final_san):
    degrees = [d for d in social_out_degrees(tiny_final_san) if d >= 1]
    assert lognormal_vs_power_law(degrees).favours_first


def test_attribute_social_degree_is_heavy_tailed(tiny_final_san):
    degrees = [d for d in social_degrees_of_attribute_nodes(tiny_final_san) if d >= 1]
    fit = fit_power_law(degrees)
    assert 1.2 < fit.distribution.alpha < 3.5
    assert max(degrees) > 10 * (sum(degrees) / len(degrees)) / 3


def test_attribute_declaration_fraction_near_config(tiny_final_san):
    assert attribute_declaration_fraction(tiny_final_san) == pytest.approx(0.22, abs=0.08)


def test_shared_attributes_boost_reciprocation(tiny_snapshots):
    earlier = tiny_snapshots.halfway()
    later = tiny_snapshots.last()
    fine = fine_grained_reciprocity(earlier, later)
    boost = reciprocity_boost_from_attributes(fine)
    assert boost is not None
    assert boost > 1.0


def test_attribute_clustering_by_type_is_well_formed(tiny_final_san):
    """Every attribute type gets a clustering coefficient in [0, 1].

    The Figure 13b ordering (Employer communities tighter than City ones) is
    asserted by the benchmark on the full workload; the 400-user test fixture
    has only a handful of attribute nodes per type, so its per-type averages
    fluctuate too much for an ordering assertion to be meaningful.
    """
    clustering = attribute_clustering_by_type(tiny_final_san)
    assert {"employer", "school", "major", "city"} <= set(clustering)
    assert all(0.0 <= value <= 1.0 for value in clustering.values())
    assert any(value > 0.0 for value in clustering.values())


def test_tech_attribute_values_have_higher_degree(tiny_final_san):
    """Users with tech employers get a planted degree boost (Figure 14 signal).

    Compared as pooled means (tech employers vs the rest) because per-value
    medians are noisy at the test workload's scale.
    """
    from repro.metrics import out_degrees_for_attribute_value
    from repro.synthetic import TECH_VALUES

    table = degree_by_top_attribute_values(tiny_final_san, "employer", count=8)
    assert table

    tech_degrees, other_degrees = [], []
    for attribute in tiny_final_san.attributes.attribute_nodes_of_type("employer"):
        info = tiny_final_san.attribute_info(attribute)
        degrees = out_degrees_for_attribute_value(tiny_final_san, attribute)
        if info.value in TECH_VALUES:
            tech_degrees.extend(degrees)
        else:
            other_degrees.extend(degrees)
    assert tech_degrees and other_degrees
    tech_mean = sum(tech_degrees) / len(tech_degrees)
    other_mean = sum(other_degrees) / len(other_degrees)
    assert tech_mean > other_mean * 0.9


def test_attribute_degree_fits_lognormal(tiny_final_san):
    degrees = [d for d in attribute_degrees_of_social_nodes(tiny_final_san) if d >= 1]
    fit = fit_lognormal(degrees)
    assert fit.distribution.sigma < 2.0


def test_crawl_coverage_at_least_seventy_percent(tiny_snapshots):
    assert all(coverage >= 0.7 for coverage in tiny_snapshots.coverage.values())
