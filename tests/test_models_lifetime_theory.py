"""Tests for lifetime sampling and the Theorem 1 / Theorem 2 predictions."""

import math
import random

import pytest

from repro.models import (
    LifetimeParameters,
    SANModelParameters,
    expected_lifetime,
    harmonic_outdegree_approximation,
    invert_theorem_one,
    invert_theorem_two,
    predicted_attribute_degree_lognormal,
    predicted_attribute_social_degree_exponent,
    predicted_outdegree_lognormal,
    sample_sleep_time,
    sample_truncated_normal_lifetime,
    truncated_normal_moments,
)


def test_lifetime_samples_nonnegative():
    params = LifetimeParameters(mu=-1.0, sigma=2.0, mean_sleep=1.0)
    generator = random.Random(1)
    samples = [sample_truncated_normal_lifetime(params, rng=generator) for _ in range(500)]
    assert all(sample >= 0 for sample in samples)


def test_lifetime_mean_matches_truncated_normal():
    params = LifetimeParameters(mu=3.0, sigma=2.5, mean_sleep=2.0)
    generator = random.Random(2)
    samples = [sample_truncated_normal_lifetime(params, rng=generator) for _ in range(4000)]
    expected_mean, expected_variance = truncated_normal_moments(3.0, 2.5)
    assert sum(samples) / len(samples) == pytest.approx(expected_mean, rel=0.05)
    assert expected_lifetime(params) == pytest.approx(expected_mean)


def test_truncated_normal_moments_no_truncation_limit():
    mean, variance = truncated_normal_moments(50.0, 1.0)
    assert mean == pytest.approx(50.0, abs=1e-6)
    assert variance == pytest.approx(1.0, abs=1e-6)
    with pytest.raises(ValueError):
        truncated_normal_moments(1.0, -1.0)


def test_sleep_time_mean_inversely_proportional_to_degree():
    params = LifetimeParameters(mu=3.0, sigma=2.5, mean_sleep=4.0)
    generator = random.Random(3)
    low = [sample_sleep_time(params, 1, rng=generator) for _ in range(3000)]
    high = [sample_sleep_time(params, 8, rng=generator) for _ in range(3000)]
    assert sum(low) / len(low) == pytest.approx(4.0, rel=0.1)
    assert sum(high) / len(high) == pytest.approx(0.5, rel=0.15)


def test_predicted_outdegree_lognormal():
    params = SANModelParameters(
        steps=10, lifetime=LifetimeParameters(mu=3.0, sigma=2.5, mean_sleep=2.0)
    )
    prediction = predicted_outdegree_lognormal(params)
    mean, variance = truncated_normal_moments(3.0, 2.5)
    assert prediction.mu == pytest.approx(mean / 2.0)
    assert prediction.sigma == pytest.approx(math.sqrt(variance) / 2.0)


def test_predicted_attribute_degree_lognormal():
    params = SANModelParameters(steps=10, attribute_mu=1.3, attribute_sigma=0.6)
    prediction = predicted_attribute_degree_lognormal(params)
    assert prediction.mu == 1.3 and prediction.sigma == 0.6


def test_theorem_two_exponent():
    params = SANModelParameters(steps=10, new_attribute_probability=0.25)
    assert predicted_attribute_social_degree_exponent(params) == pytest.approx(
        (2 - 0.25) / (1 - 0.25)
    )
    with pytest.raises(ValueError):
        predicted_attribute_social_degree_exponent(
            SANModelParameters(steps=10, new_attribute_probability=1.0)
        )


def test_invert_theorem_one_round_trip():
    lifetime = invert_theorem_one(target_mu=1.8, target_sigma=1.0, mean_sleep=2.0)
    mean, variance = truncated_normal_moments(lifetime.mu, lifetime.sigma)
    assert mean / 2.0 == pytest.approx(1.8, abs=0.05)
    assert math.sqrt(variance) / 2.0 == pytest.approx(1.0, abs=0.05)
    with pytest.raises(ValueError):
        invert_theorem_one(1.0, -0.5)


def test_invert_theorem_two_round_trip():
    p = invert_theorem_two(2.3333333)
    assert p == pytest.approx(0.25, abs=1e-3)
    with pytest.raises(ValueError):
        invert_theorem_two(1.5)


def test_harmonic_outdegree_approximation():
    assert harmonic_outdegree_approximation(0.0, 2.0) == pytest.approx(1.0)
    assert harmonic_outdegree_approximation(4.0, 2.0) == pytest.approx(math.exp(2.0))
    with pytest.raises(ValueError):
        harmonic_outdegree_approximation(1.0, 0.0)


def test_lifetime_parameters_validation():
    with pytest.raises(ValueError):
        LifetimeParameters(mu=1.0, sigma=0.0)
    with pytest.raises(ValueError):
        LifetimeParameters(mu=1.0, sigma=1.0, mean_sleep=0.0)
