"""Tests for attribute-structure metrics."""

import pytest

from repro.metrics import (
    approximate_attribute_clustering_coefficient,
    attribute_clustering_by_type,
    attribute_clustering_distribution,
    attribute_link_counts_by_type,
    attribute_type_counts,
    exact_attribute_clustering_coefficient,
    social_clustering_distribution,
    top_attribute_nodes,
)


def test_attribute_clustering_by_type(figure1_san):
    by_type = attribute_clustering_by_type(figure1_san)
    assert set(by_type) == {"employer", "school", "major", "city"}
    # Google employees (1, 2) are reciprocally linked; CS majors (4, 5) are not.
    assert by_type["employer"] > by_type["major"]
    assert by_type["employer"] == pytest.approx(1.0)


def test_clustering_distributions(figure1_san):
    attribute_points = attribute_clustering_distribution(figure1_san)
    social_points = social_clustering_distribution(figure1_san)
    assert all(degree >= 2 for degree, _ in attribute_points)
    assert all(0.0 <= value <= 1.0 for _, value in attribute_points)
    assert all(0.0 <= value <= 1.0 for _, value in social_points)


def test_exact_and_approximate_attribute_clustering(figure1_san):
    exact = exact_attribute_clustering_coefficient(figure1_san)
    approx = approximate_attribute_clustering_coefficient(
        figure1_san, num_samples=20000, rng=1
    )
    assert approx == pytest.approx(exact, abs=0.05)


def test_top_attribute_nodes(figure1_san):
    top = top_attribute_nodes(figure1_san, count=2)
    assert len(top) == 2
    assert all(count == 2 for _, count in top)
    top_employers = top_attribute_nodes(figure1_san, attr_type="employer", count=5)
    assert top_employers == [("employer:Google", 2)]


def test_attribute_type_counts(figure1_san):
    counts = attribute_type_counts(figure1_san)
    assert counts == {"employer": 1, "school": 1, "major": 1, "city": 1}


def test_attribute_link_counts_by_type(figure1_san):
    counts = attribute_link_counts_by_type(figure1_san)
    assert counts == {"employer": 2, "school": 2, "major": 2, "city": 2}


def test_attribute_metrics_empty():
    from repro.graph import SAN

    assert attribute_clustering_by_type(SAN()) == {}
    assert attribute_type_counts(SAN()) == {}
    assert top_attribute_nodes(SAN()) == []
