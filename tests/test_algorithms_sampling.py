"""Tests for sampling utilities (attribute subsampling, reservoirs, weighted choice)."""

import pytest

from repro.algorithms import (
    drop_users_attributes,
    reservoir_sample,
    sample_nodes,
    sample_social_edges,
    subsample_attributes,
    weighted_choice,
)


def test_sample_nodes_without_replacement(figure1_san):
    nodes = sample_nodes(figure1_san, 3, rng=1)
    assert len(nodes) == 3
    assert len(set(nodes)) == 3
    assert sample_nodes(figure1_san, 100, rng=1) == list(figure1_san.social_nodes())


def test_sample_social_edges(figure1_san):
    edges = sample_social_edges(figure1_san, 4, rng=2)
    assert len(edges) == 4
    for source, target in edges:
        assert figure1_san.has_social_edge(source, target)


def test_subsample_attributes_keeps_social_layer(figure1_san):
    subsampled = subsample_attributes(figure1_san, keep_probability=0.5, rng=3)
    assert subsampled.number_of_social_edges() == figure1_san.number_of_social_edges()
    assert subsampled.number_of_attribute_edges() <= figure1_san.number_of_attribute_edges()


def test_subsample_attributes_extremes(figure1_san):
    none_kept = subsample_attributes(figure1_san, keep_probability=0.0, rng=4)
    all_kept = subsample_attributes(figure1_san, keep_probability=1.0, rng=4)
    assert none_kept.number_of_attribute_edges() == 0
    assert all_kept.number_of_attribute_edges() == figure1_san.number_of_attribute_edges()


def test_subsample_attributes_validates_probability(figure1_san):
    with pytest.raises(ValueError):
        subsample_attributes(figure1_san, keep_probability=1.5)


def test_drop_users_attributes_all_or_nothing(figure1_san):
    dropped = drop_users_attributes(figure1_san, keep_probability=0.5, rng=5)
    for node in dropped.social_nodes():
        original = figure1_san.attribute_degree(node)
        kept = dropped.attribute_degree(node)
        assert kept in (0, original)


def test_reservoir_sample_uniformity_and_size():
    sample = reservoir_sample(range(1000), 10, rng=7)
    assert len(sample) == 10
    assert len(set(sample)) == 10
    short = reservoir_sample(range(3), 10, rng=7)
    assert sorted(short) == [0, 1, 2]


def test_weighted_choice_respects_weights():
    counts = {"a": 0, "b": 0}
    import random

    generator = random.Random(9)
    for _ in range(2000):
        counts[weighted_choice(["a", "b"], [9.0, 1.0], rng=generator)] += 1
    assert counts["a"] > counts["b"] * 4


def test_weighted_choice_zero_weights_falls_back_to_uniform():
    choice = weighted_choice(["a", "b"], [0.0, 0.0], rng=1)
    assert choice in ("a", "b")


def test_weighted_choice_validation():
    with pytest.raises(ValueError):
        weighted_choice(["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        weighted_choice([], [])
    with pytest.raises(ValueError):
        weighted_choice(["a"], [-1.0])
