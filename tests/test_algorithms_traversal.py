"""Tests for BFS traversal, distance distributions, and attribute distances."""


from repro.algorithms import (
    attribute_distance,
    bfs_distances,
    effective_diameter_from_histogram,
    sample_attribute_distance_distribution,
    sample_distance_distribution,
    shortest_path_length,
    undirected_bfs_distances,
)
from repro.graph import san_from_edge_lists


def test_bfs_distances_on_ring(ring_san):
    distances = bfs_distances(ring_san.social, 0)
    assert distances[0] == 0
    assert distances[1] == 1
    assert distances[9] == 9  # directed ring: the "previous" node is 9 hops away


def test_bfs_distances_max_depth(ring_san):
    distances = bfs_distances(ring_san.social, 0, max_depth=3)
    assert max(distances.values()) == 3
    assert 4 not in distances


def test_undirected_bfs_distances(ring_san):
    adjacency = ring_san.social.to_undirected_adjacency()
    distances = undirected_bfs_distances(adjacency, 0)
    assert distances[9] == 1
    assert distances[5] == 5


def test_shortest_path_length(figure1_san):
    assert shortest_path_length(figure1_san.social, 1, 2) == 1
    assert shortest_path_length(figure1_san.social, 1, 5) == 2  # 1 -> 3 -> 5
    assert shortest_path_length(figure1_san.social, 4, 4) == 0
    assert shortest_path_length(figure1_san.social, 5, 1) is None or isinstance(
        shortest_path_length(figure1_san.social, 5, 1), int
    )


def test_shortest_path_unreachable():
    san = san_from_edge_lists([(1, 2), (3, 4)])
    assert shortest_path_length(san.social, 1, 4) is None


def test_sample_distance_distribution_counts_pairs(ring_san):
    histogram = sample_distance_distribution(ring_san.social, num_sources=10, rng=1)
    # From every source, the other 9 nodes are at distances 1..9.
    assert sum(histogram.values()) == 10 * 9
    assert set(histogram) == set(range(1, 10))


def test_effective_diameter_from_histogram_interpolates():
    histogram = {1: 50, 2: 40, 3: 10}
    diameter = effective_diameter_from_histogram(histogram, quantile=0.9)
    assert 2.0 <= diameter <= 3.0
    assert effective_diameter_from_histogram({}, quantile=0.9) == 0.0


def test_effective_diameter_all_at_one():
    assert effective_diameter_from_histogram({1: 10}) <= 1.0


def test_attribute_distance_shared_member_is_one(figure1_san):
    # employer:Google members {1,2}; school:UC Berkeley members {2,3} share user 2.
    assert attribute_distance(figure1_san, "employer:Google", "school:UC Berkeley") == 1


def test_attribute_distance_uses_social_path(figure1_san):
    # major:Computer Science members {4,5}; city:San Francisco members {5,6} share 5.
    assert attribute_distance(figure1_san, "major:Computer Science", "city:San Francisco") == 1
    # employer:Google {1,2} to city:SF {5,6}: shortest social distance 1->3->5 = 2, plus 1.
    distance = attribute_distance(figure1_san, "employer:Google", "city:San Francisco")
    assert distance == 3


def test_attribute_distance_unreachable():
    san = san_from_edge_lists(
        [(1, 2), (3, 4)],
        [(1, "city", "A"), (4, "city", "B")],
    )
    assert attribute_distance(san, "city:A", "city:B") is None


def test_sample_attribute_distance_distribution(figure1_san):
    histogram = sample_attribute_distance_distribution(figure1_san, num_pairs=30, rng=3)
    assert histogram
    assert all(distance >= 1 for distance in histogram)
