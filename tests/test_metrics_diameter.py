"""Tests for social and attribute effective diameters."""

import pytest

from repro.metrics import (
    attribute_effective_diameter,
    distance_distribution,
    distance_mode,
    social_effective_diameter,
)


def test_social_diameter_methods_agree_on_ring(ring_san):
    hyperanf = social_effective_diameter(ring_san, method="hyperanf", precision=9)
    sampled = social_effective_diameter(ring_san, method="sampled", num_sources=10, rng=1)
    assert abs(hyperanf - sampled) < 1.5
    assert sampled > 5  # 90th percentile of distances 1..9 is ~8


def test_social_diameter_clique(clique_san):
    assert social_effective_diameter(clique_san, method="sampled", rng=1) <= 1.0


def test_social_diameter_invalid_method(figure1_san):
    with pytest.raises(ValueError):
        social_effective_diameter(figure1_san, method="exactly")


def test_attribute_effective_diameter(figure1_san):
    diameter = attribute_effective_diameter(figure1_san, num_pairs=50, rng=2)
    assert diameter >= 1.0


def test_distance_distribution_and_mode(ring_san):
    histogram = distance_distribution(ring_san, num_sources=10, rng=3)
    assert set(histogram) == set(range(1, 10))
    # Uniform histogram: mode is the first maximal key.
    assert distance_mode(histogram) in range(1, 10)
    assert distance_mode({}) is None
    assert distance_mode({3: 5, 4: 9}) == 4
