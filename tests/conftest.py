"""Shared fixtures for the test suite.

Expensive objects (simulated evolutions, generated model runs, crawled
snapshot series) are session-scoped so the full suite stays fast while every
module still gets realistic inputs.
"""

from __future__ import annotations

import random

import pytest

from repro.crawler import crawl_evolution
from repro.graph import SAN, san_from_edge_lists
from repro.metrics.evolution import PhaseBoundaries
from repro.models import SANModelParameters, ZhelModelParameters, generate_san, generate_zhel_san
from repro.synthetic import GooglePlusConfig, simulate_google_plus, standard_snapshot_days


@pytest.fixture
def empty_san() -> SAN:
    return SAN()


@pytest.fixture
def figure1_san() -> SAN:
    """A small SAN in the spirit of the paper's Figure 1.

    Six social nodes (1..6), four attribute nodes, and a mix of reciprocal and
    one-way social links so that reciprocity, clustering and closure metrics
    all have non-trivial values.
    """
    social_edges = [
        (1, 2), (2, 1),          # reciprocal pair
        (2, 3), (3, 2),          # reciprocal pair
        (1, 3),                  # one-way
        (4, 2),                  # one-way (triadic closure candidate)
        (5, 6), (6, 5),          # reciprocal pair
        (6, 4),                  # one-way
        (3, 5),                  # one-way bridge
    ]
    attribute_records = [
        (1, "employer", "Google"),
        (2, "employer", "Google"),
        (2, "school", "UC Berkeley"),
        (3, "school", "UC Berkeley"),
        (4, "major", "Computer Science"),
        (5, "major", "Computer Science"),
        (5, "city", "San Francisco"),
        (6, "city", "San Francisco"),
    ]
    return san_from_edge_lists(social_edges, attribute_records)


@pytest.fixture
def ring_san() -> SAN:
    """A directed ring of 10 nodes (no attributes): useful for distance tests."""
    edges = [(i, (i + 1) % 10) for i in range(10)]
    return san_from_edge_lists(edges)


@pytest.fixture
def clique_san() -> SAN:
    """A fully reciprocally connected clique of 6 nodes sharing one attribute."""
    edges = [(i, j) for i in range(6) for j in range(6) if i != j]
    attributes = [(i, "employer", "Acme") for i in range(6)]
    return san_from_edge_lists(edges, attributes)


@pytest.fixture(scope="session")
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture(scope="session")
def tiny_evolution():
    """A small simulated Google+ evolution (session-scoped; ~400 users)."""
    config = GooglePlusConfig(
        total_users=400,
        num_days=40,
        phases=PhaseBoundaries(phase_one_end=10, phase_two_end=30),
    )
    return simulate_google_plus(config, rng=20120835)


@pytest.fixture(scope="session")
def tiny_snapshot_days(tiny_evolution):
    return standard_snapshot_days(tiny_evolution.num_days, count=6)


@pytest.fixture(scope="session")
def tiny_snapshots(tiny_evolution, tiny_snapshot_days):
    """Crawled snapshot series over the tiny evolution."""
    return crawl_evolution(tiny_evolution, tiny_snapshot_days)


@pytest.fixture(scope="session")
def tiny_final_san(tiny_snapshots):
    return tiny_snapshots.last()


@pytest.fixture(scope="session")
def model_run():
    """A small generative-model run (session-scoped)."""
    params = SANModelParameters(steps=700)
    return generate_san(params, rng=99, snapshot_every=350)


@pytest.fixture(scope="session")
def zhel_run():
    """A small Zhel baseline run (session-scoped)."""
    params = ZhelModelParameters(steps=700)
    return generate_zhel_san(params, rng=99, snapshot_every=350)
