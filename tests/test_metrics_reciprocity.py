"""Tests for global and fine-grained reciprocity."""

import pytest

from repro.graph import san_from_edge_lists
from repro.metrics import (
    attribute_bucket,
    fine_grained_reciprocity,
    global_reciprocity,
    reciprocal_edge_count,
    reciprocity_by_common_attributes,
)


def test_global_reciprocity_values(figure1_san, clique_san, ring_san):
    # figure1: 6 of 10 directed links are mutual.
    assert global_reciprocity(figure1_san) == pytest.approx(0.6)
    assert global_reciprocity(clique_san) == 1.0
    assert global_reciprocity(ring_san) == 0.0


def test_global_reciprocity_empty():
    from repro.graph import SAN

    assert global_reciprocity(SAN()) == 0.0


def test_reciprocal_edge_count(figure1_san):
    mutual, total = reciprocal_edge_count(figure1_san)
    assert (mutual, total) == (6, 10)


def test_attribute_bucket():
    assert attribute_bucket(0) == 0
    assert attribute_bucket(1) == 1
    assert attribute_bucket(2) == 2
    assert attribute_bucket(7) == 2
    assert attribute_bucket(-1) == 0


def _make_snapshot_pair():
    """Earlier SAN with one-way links; later SAN where some became mutual."""
    earlier = san_from_edge_lists(
        [(1, 2), (3, 4), (5, 6)],
        [(1, "employer", "G"), (2, "employer", "G"), (5, "city", "X"), (6, "city", "Y")],
    )
    later = earlier.copy()
    later.add_social_edge(2, 1)  # the attribute-sharing pair reciprocates
    return earlier, later


def test_fine_grained_reciprocity_buckets():
    earlier, later = _make_snapshot_pair()
    result = fine_grained_reciprocity(earlier, later)
    # Pair (1,2) shares one attribute and reciprocated.
    assert result.average_rate_for_attribute_bucket(1) == pytest.approx(1.0)
    # Pairs (3,4) and (5,6) share no attribute and did not reciprocate.
    assert result.average_rate_for_attribute_bucket(0) == pytest.approx(0.0)
    assert result.average_rate_for_attribute_bucket(2) is None


def test_fine_grained_reciprocity_skips_existing_mutual_links(figure1_san):
    result = fine_grained_reciprocity(figure1_san, figure1_san)
    total_links = sum(total for _, total in result.counts.values())
    # Only the 4 one-way links (1->3, 4->2, 6->4, 3->5) are candidates.
    assert total_links == 4


def test_fine_grained_reciprocity_max_links():
    earlier, later = _make_snapshot_pair()
    result = fine_grained_reciprocity(earlier, later, max_links=1)
    assert sum(total for _, total in result.counts.values()) == 1


def test_reciprocity_by_common_attributes():
    earlier, later = _make_snapshot_pair()
    rates = reciprocity_by_common_attributes(earlier, later)
    assert rates[1] > rates[0]


def test_series_for_attribute_bucket():
    earlier, later = _make_snapshot_pair()
    result = fine_grained_reciprocity(earlier, later)
    series = result.series_for_attribute_bucket(0)
    assert all(isinstance(social, int) for social, _ in series)
    assert result.rate(0, 0) == pytest.approx(0.0)
    assert result.rate(99, 0) is None
