"""Tests for attribute vocabularies and the profile model."""

import random
from collections import Counter

import pytest

from repro.synthetic import (
    NAMED_VALUES,
    AttributeVocabulary,
    ProfileModel,
    build_vocabulary,
    default_vocabularies,
)


def test_build_vocabulary_has_named_heads():
    vocabulary = build_vocabulary("employer", num_values=50)
    assert vocabulary.values[: len(NAMED_VALUES["employer"])] == NAMED_VALUES["employer"]
    assert len(vocabulary) == 50
    assert vocabulary.attr_type == "employer"


def test_vocabulary_requires_values():
    with pytest.raises(ValueError):
        AttributeVocabulary(attr_type="x", values=[])


def test_vocabulary_sampling_is_zipf_skewed():
    vocabulary = build_vocabulary("city", num_values=100, zipf_exponent=1.2)
    generator = random.Random(1)
    counts = Counter(vocabulary.sample(rng=generator) for _ in range(5000))
    head = counts[vocabulary.values[0]]
    tail = counts[vocabulary.values[-1]]
    assert head > tail * 3


def test_vocabulary_tech_tilt_boosts_tech_values():
    vocabulary = build_vocabulary("employer", num_values=100)
    generator = random.Random(2)
    tilted = Counter(vocabulary.sample(rng=generator, tech_tilt=0.9) for _ in range(2000))
    untilted = Counter(vocabulary.sample(rng=generator, tech_tilt=0.0) for _ in range(2000))
    tech = {"Google", "Microsoft", "Intel", "Facebook"}
    tilted_share = sum(tilted[v] for v in tech) / 2000
    untilted_share = sum(untilted[v] for v in tech) / 2000
    assert tilted_share > untilted_share


def test_default_vocabularies_cover_the_four_types():
    vocabularies = default_vocabularies(num_values=30)
    assert set(vocabularies) == {"employer", "school", "major", "city"}
    assert all(len(v) == 30 for v in vocabularies.values())


def test_profile_model_declaration_rate():
    model = ProfileModel(vocabularies=default_vocabularies(50), declare_probability=0.22)
    generator = random.Random(3)
    declared = sum(1 for _ in range(3000) if model.sample_profile(rng=generator))
    assert declared / 3000 == pytest.approx(0.22, abs=0.03)


def test_profile_model_declares_known_types():
    model = ProfileModel(vocabularies=default_vocabularies(50), declare_probability=1.0)
    generator = random.Random(4)
    profile = {}
    while not profile:
        profile = model.sample_profile(rng=generator)
    assert set(profile) <= {"employer", "school", "major", "city"}


def test_profile_model_inviter_copy():
    model = ProfileModel(
        vocabularies=default_vocabularies(50),
        declare_probability=1.0,
        inviter_copy_probability=1.0,
        type_probabilities={"employer": 1.0, "school": 0.0, "major": 0.0, "city": 0.0},
    )
    generator = random.Random(5)
    inviter_profile = {"employer": "Infosys"}
    copies = sum(
        1
        for _ in range(200)
        if model.sample_profile(rng=generator, inviter_profile=inviter_profile).get("employer")
        == "Infosys"
    )
    assert copies == 200
