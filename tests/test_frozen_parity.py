"""Property-style parity tests: every ported metric must return identical
results on the mutable ``SAN`` and the frozen CSR-backed ``FrozenSAN``.

The fixtures sweep several random synthetic SANs (different seeds, sizes, and
densities, plus degenerate corner cases) so the vectorized kernels are
exercised on empty rows, isolated nodes, reciprocal pairs, self-free graphs
and skewed attribute communities alike.  Integer-valued metrics must match
exactly; float-valued metrics must match to within accumulation-order noise.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.algorithms.clustering import (
    average_attribute_clustering_coefficient,
    average_clustering_for_attribute_type,
    average_social_clustering_coefficient,
    clustering_by_degree,
    directed_links_among,
    node_clustering_coefficient,
)
from repro.algorithms.triangles import count_directed_triangles
from repro.graph import SAN
from repro.metrics.attribute_metrics import (
    attribute_clustering_by_type,
    attribute_link_counts_by_type,
    attribute_type_counts,
    top_attribute_nodes,
)
from repro.metrics.degrees import (
    attribute_degrees_of_social_nodes,
    degree_summary,
    out_degrees_for_attribute_value,
    social_degrees_of_attribute_nodes,
    social_in_degrees,
    social_out_degrees,
    social_total_degrees,
)
from repro.metrics.joint_degree import (
    attribute_assortativity,
    attribute_knn,
    social_assortativity,
    social_knn,
    undirected_degree_assortativity,
)
from repro.metrics.reciprocity import (
    fine_grained_reciprocity,
    global_reciprocity,
    reciprocal_edge_count,
)

ATTRIBUTE_TYPES = ["employer", "school", "major", "city"]


def random_san(
    seed: int,
    num_social: int = 60,
    num_edges: int = 240,
    num_attribute_values: int = 8,
    num_attribute_links: int = 70,
) -> SAN:
    """A random synthetic SAN with reciprocal links and shared attributes."""
    rng = random.Random(seed)
    san = SAN()
    for node in range(num_social):
        san.add_social_node(node)
    for _ in range(num_edges):
        source = rng.randrange(num_social)
        target = rng.randrange(num_social)
        if source == target:
            continue
        san.add_social_edge(source, target)
        if rng.random() < 0.4:
            san.add_social_edge(target, source)
    for _ in range(num_attribute_links):
        social = rng.randrange(num_social)
        attr_type = rng.choice(ATTRIBUTE_TYPES)
        value = f"v{rng.randrange(num_attribute_values)}"
        san.add_attribute_edge(
            social, f"{attr_type}:{value}", attr_type=attr_type, value=value
        )
    return san


def corner_case_sans():
    """Degenerate SANs the kernels must survive: empty, edgeless, tiny."""
    empty = SAN()

    edgeless = SAN()
    for node in range(5):
        edgeless.add_social_node(node)

    no_attributes = SAN()
    no_attributes.add_social_edge(1, 2)
    no_attributes.add_social_edge(2, 1)

    lone_pair = SAN()
    lone_pair.add_attribute_edge(1, "city:SF", attr_type="city", value="SF")
    return [empty, edgeless, no_attributes, lone_pair]


SEEDS = [101, 202, 303]


@pytest.fixture(params=SEEDS + ["corner"], scope="module")
def san_pair(request):
    """(mutable, frozen) pairs across random seeds plus the corner cases."""
    if request.param == "corner":
        sans = corner_case_sans()
    else:
        sans = [
            random_san(request.param),
            random_san(request.param + 1, num_social=25, num_edges=40, num_attribute_links=15),
        ]
    return [(san, san.freeze()) for san in sans]


def assert_float_close(left, right):
    assert math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-12)


def assert_curve_close(left, right):
    assert len(left) == len(right)
    for (degree_l, value_l), (degree_r, value_r) in zip(left, right):
        assert degree_l == degree_r
        assert_float_close(value_l, value_r)


class TestDegreeParity:
    def test_degree_sequences(self, san_pair):
        for san, frozen in san_pair:
            assert social_out_degrees(frozen) == social_out_degrees(san)
            assert social_in_degrees(frozen) == social_in_degrees(san)
            assert social_total_degrees(frozen) == social_total_degrees(san)
            assert attribute_degrees_of_social_nodes(frozen) == attribute_degrees_of_social_nodes(san)
            assert social_degrees_of_attribute_nodes(frozen) == social_degrees_of_attribute_nodes(san)

    def test_degree_summary(self, san_pair):
        for san, frozen in san_pair:
            assert degree_summary(frozen) == degree_summary(san)

    def test_out_degrees_for_attribute_value(self, san_pair):
        for san, frozen in san_pair:
            for attribute in san.attribute_nodes():
                assert sorted(out_degrees_for_attribute_value(frozen, attribute)) == sorted(
                    out_degrees_for_attribute_value(san, attribute)
                )
            assert out_degrees_for_attribute_value(frozen, "missing:x") == []


class TestReciprocityParity:
    def test_global_reciprocity(self, san_pair):
        for san, frozen in san_pair:
            assert reciprocal_edge_count(frozen) == reciprocal_edge_count(san)
            assert_float_close(global_reciprocity(frozen), global_reciprocity(san))

    def test_fine_grained_reciprocity(self):
        earlier = random_san(7, num_edges=120)
        later = random_san(7, num_edges=240)  # superset-ish later snapshot
        mutable = fine_grained_reciprocity(earlier, later)
        frozen = fine_grained_reciprocity(earlier.freeze(), later.freeze())
        assert frozen.counts == mutable.counts


class TestJointDegreeParity:
    def test_social_knn(self, san_pair):
        for san, frozen in san_pair:
            assert_curve_close(social_knn(frozen), social_knn(san))

    def test_attribute_knn(self, san_pair):
        for san, frozen in san_pair:
            assert_curve_close(attribute_knn(frozen), attribute_knn(san))

    def test_assortativities(self, san_pair):
        for san, frozen in san_pair:
            assert_float_close(social_assortativity(frozen), social_assortativity(san))
            assert_float_close(
                undirected_degree_assortativity(frozen),
                undirected_degree_assortativity(san),
            )
            assert_float_close(
                attribute_assortativity(frozen), attribute_assortativity(san)
            )


class TestClusteringParity:
    def test_node_clustering(self, san_pair):
        for san, frozen in san_pair:
            for node in san.social_nodes():
                assert_float_close(
                    node_clustering_coefficient(frozen, node),
                    node_clustering_coefficient(san, node),
                )
            for attribute in san.attribute_nodes():
                assert_float_close(
                    node_clustering_coefficient(frozen, attribute),
                    node_clustering_coefficient(san, attribute),
                )

    def test_average_clustering(self, san_pair):
        for san, frozen in san_pair:
            assert_float_close(
                average_social_clustering_coefficient(frozen),
                average_social_clustering_coefficient(san),
            )
            assert_float_close(
                average_attribute_clustering_coefficient(frozen),
                average_attribute_clustering_coefficient(san),
            )

    def test_clustering_by_degree(self, san_pair):
        for san, frozen in san_pair:
            assert_curve_close(
                clustering_by_degree(frozen, "social"), clustering_by_degree(san, "social")
            )
            assert_curve_close(
                clustering_by_degree(frozen, "attribute"),
                clustering_by_degree(san, "attribute"),
            )

    def test_directed_links_among_subsets(self, san_pair):
        rng = random.Random(99)
        for san, frozen in san_pair:
            nodes = list(san.social_nodes())
            for _ in range(5):
                subset = rng.sample(nodes, min(len(nodes), 8)) if nodes else []
                assert directed_links_among(frozen, subset) == directed_links_among(san, subset)

    def test_per_type_clustering(self, san_pair):
        for san, frozen in san_pair:
            for attr_type in san.attributes.attribute_types():
                assert_float_close(
                    average_clustering_for_attribute_type(frozen, attr_type),
                    average_clustering_for_attribute_type(san, attr_type),
                )
            mutable_by_type = attribute_clustering_by_type(san)
            frozen_by_type = attribute_clustering_by_type(frozen)
            assert list(frozen_by_type) == list(mutable_by_type)
            for attr_type, value in mutable_by_type.items():
                assert_float_close(frozen_by_type[attr_type], value)


class TestAttributeMetricParity:
    def test_type_counts(self, san_pair):
        for san, frozen in san_pair:
            assert attribute_type_counts(frozen) == attribute_type_counts(san)
            assert attribute_link_counts_by_type(frozen) == attribute_link_counts_by_type(san)

    def test_top_attribute_nodes(self, san_pair):
        for san, frozen in san_pair:
            assert top_attribute_nodes(frozen) == top_attribute_nodes(san)
            for attr_type in ATTRIBUTE_TYPES:
                assert top_attribute_nodes(frozen, attr_type, 3) == top_attribute_nodes(
                    san, attr_type, 3
                )


class TestTriangleParity:
    def test_triangle_count(self, san_pair):
        for san, frozen in san_pair:
            assert count_directed_triangles(frozen) == count_directed_triangles(san)


class TestNoScipyFallbacks:
    """The frozen kernels must stay correct when scipy is unavailable.

    With scipy installed the sparse kernels shadow the batched-numpy
    fallbacks, so these tests disable scipy through the engine's dependency
    gate (``REPRO_NO_SCIPY``, checked at dispatch time) to exercise the
    fallback kernels against the mutable ground truth.
    """

    @pytest.fixture(autouse=True)
    def without_scipy(self, monkeypatch):
        from repro.engine import deps

        monkeypatch.setenv(deps.DISABLE_ENV_VAR, "1")
        assert not deps.have_scipy()

    def test_clustering_fallbacks(self, san_pair):
        for san, frozen in san_pair:
            assert_float_close(
                average_social_clustering_coefficient(frozen),
                average_social_clustering_coefficient(san),
            )
            assert_float_close(
                average_attribute_clustering_coefficient(frozen),
                average_attribute_clustering_coefficient(san),
            )
            assert_curve_close(
                clustering_by_degree(frozen, "social"), clustering_by_degree(san, "social")
            )
            assert_curve_close(
                clustering_by_degree(frozen, "attribute"),
                clustering_by_degree(san, "attribute"),
            )
            mutable_by_type = attribute_clustering_by_type(san)
            frozen_by_type = attribute_clustering_by_type(frozen)
            assert frozen_by_type.keys() == mutable_by_type.keys()
            for attr_type, value in mutable_by_type.items():
                assert_float_close(frozen_by_type[attr_type], value)

    def test_triangle_fallback(self, san_pair):
        for san, frozen in san_pair:
            assert count_directed_triangles(frozen) == count_directed_triangles(san)
