"""Integration tests: generative-model fidelity against a reference SAN.

Small-scale versions of the Section 6 evaluation — the full comparison runs in
the benchmark harness; here we assert the qualitative orderings on
session-scoped runs so the suite stays fast.
"""


from repro.applications import (
    AnonymityParameters,
    SybilLimitParameters,
    attack_probability_vs_compromised,
    sybil_identities_vs_compromised,
)
from repro.metrics import (
    attribute_clustering_distribution,
    global_reciprocity,
    social_clustering_distribution,
)
from repro.models import (
    AttachmentModelSpec,
    evaluate_attachment_models,
    evaluate_closure_models,
)
from repro.algorithms import classify_closures


def test_model_and_zhel_generate_comparable_scale(model_run, zhel_run):
    assert model_run.san.number_of_social_nodes() == zhel_run.san.number_of_social_nodes()
    assert model_run.san.number_of_social_edges() > 500
    assert zhel_run.san.number_of_social_edges() > 500


def test_lapa_beats_pa_on_crawled_arrivals(tiny_evolution):
    """On the Google+-like arrivals (homophily + preferential growth), PA beats
    the uniform model and some LAPA beta beats plain PA (the Figure 15 ordering)."""
    halfway = tiny_evolution.num_days // 2
    history = tiny_evolution.arrival_history(start_day=halfway + 1)
    specs = [
        AttachmentModelSpec(kind="pa", alpha=1.0, label="pa"),
        AttachmentModelSpec(kind="pa", alpha=0.0, label="uniform"),
    ] + [
        AttachmentModelSpec(kind="lapa", alpha=1.0, beta=beta)
        for beta in (5.0, 20.0, 100.0)
    ]
    result = evaluate_attachment_models(history, specs, max_links=600, rng=11)
    likelihoods = result.log_likelihoods
    assert likelihoods["pa"] > likelihoods["uniform"]
    best_lapa = max(
        value for name, value in likelihoods.items() if name.startswith("lapa")
    )
    assert best_lapa > likelihoods["pa"]


def test_closure_models_ordering_on_crawl(tiny_evolution):
    """RR-SAN should explain observed closures at least as well as RR, and RR
    at least as well as the two-hop Baseline (Section 5.2 ordering)."""
    halfway = tiny_evolution.num_days // 2
    state = tiny_evolution.san_at(halfway)
    new_links = tiny_evolution.new_social_links_between(halfway, tiny_evolution.num_days)
    closures = [
        (source, target)
        for source, target in new_links
        if state.is_social_node(source)
        and state.is_social_node(target)
        and not state.has_social_edge(source, target)
    ][:400]
    comparison = evaluate_closure_models(state, closures)
    averages = comparison.average_log_probabilities
    assert averages["rr_san"] >= averages["random_random"] - 0.05
    assert averages["random_random"] >= averages["baseline"] - 0.25


def test_closure_breakdown_triadic_dominates(tiny_evolution):
    """Most observed closures involve a common friend, a smaller share a common
    attribute (paper: 84% / 18%)."""
    halfway = tiny_evolution.num_days // 2
    state = tiny_evolution.san_at(halfway)
    new_links = tiny_evolution.new_social_links_between(halfway, tiny_evolution.num_days)
    candidates = [
        (s, t)
        for s, t in new_links
        if state.is_social_node(s) and state.is_social_node(t)
    ]
    breakdown = classify_closures(state, candidates)
    assert breakdown.total > 50
    assert breakdown.triadic_fraction > breakdown.focal_fraction
    assert breakdown.triadic_fraction > 0.4
    assert 0.0 < breakdown.focal_fraction < 0.6


def test_model_reciprocity_closer_to_reference_than_zhel(model_run, zhel_run, tiny_final_san):
    reference = global_reciprocity(tiny_final_san)
    model_error = abs(global_reciprocity(model_run.san) - reference)
    zhel_error = abs(global_reciprocity(zhel_run.san) - reference)
    # Both models were configured with similar reciprocation, so both should be
    # in a sane band; the SAN model must not be wildly off.
    assert model_error < 0.35
    assert zhel_error < 0.6


def test_model_produces_nontrivial_attribute_clustering(model_run):
    points = attribute_clustering_distribution(model_run.san)
    assert points, "attribute clustering distribution should not be empty"
    assert any(value > 0 for _, value in points)
    social_points = social_clustering_distribution(model_run.san)
    assert any(value > 0 for _, value in social_points)


def test_sybil_defense_runs_on_generated_topologies(model_run, zhel_run, tiny_final_san):
    counts = [20, 60]
    params = SybilLimitParameters(degree_bound=100)
    for san in (tiny_final_san, model_run.san, zhel_run.san):
        results = sybil_identities_vs_compromised(san, counts, params=params, rng=5)
        assert results[1].num_sybil_identities >= results[0].num_sybil_identities


def test_anonymity_attack_probability_ordering(model_run, tiny_final_san):
    params = AnonymityParameters(num_circuits=500)
    for san in (tiny_final_san, model_run.san):
        results = attack_probability_vs_compromised(san, [10, 80], params=params, rng=6)
        assert results[1].attack_probability >= results[0].attack_probability
