"""Tests for the Zhel and MAG baseline generators."""

import pytest

from repro.fitting import fit_lognormal, fit_power_law, likelihood_ratio_test
from repro.metrics import (
    attribute_degrees_of_social_nodes,
    global_reciprocity,
    social_out_degrees,
)
from repro.models import (
    MAGModelParameters,
    ZhelModelParameters,
    expected_degree,
    generate_mag_san,
    generate_zhel_san,
)


def test_zhel_run_basic_structure(zhel_run):
    params_steps = 700
    assert zhel_run.san.number_of_social_nodes() == params_steps + 5
    assert zhel_run.san.number_of_social_edges() > 0
    assert zhel_run.san.number_of_attribute_edges() > 0
    assert zhel_run.history.num_node_joins() == params_steps
    days = [day for day, _ in zhel_run.snapshots]
    assert days[-1] == params_steps


def test_zhel_reciprocity_near_parameter(zhel_run):
    assert abs(global_reciprocity(zhel_run.san) - 0.4) < 0.25


def test_zhel_degrees_less_lognormal_than_san_model(zhel_run, model_run):
    """Zhel produces PA-style heavy tails, our model lognormal degrees.

    At the few-hundred-node scale of the test fixtures a lognormal (two free
    parameters) can fit almost any discrete heavy-tailed sample, so the robust
    statement is *relative*: the lognormal's advantage over the power law must
    be clearly smaller on the Zhel degrees than on our model's degrees.  The
    Figure 16 bench makes the absolute comparison at larger scale.
    """

    def lognormal_advantage(san):
        degrees = [d for d in social_out_degrees(san) if d >= 1]
        lognormal = fit_lognormal(degrees)
        power = fit_power_law(degrees)
        return likelihood_ratio_test(
            degrees, lognormal.distribution, power.distribution
        ).normalised_ratio

    assert lognormal_advantage(zhel_run.san) < lognormal_advantage(model_run.san)


def test_zhel_groups_driven_by_social_structure(zhel_run):
    degrees = attribute_degrees_of_social_nodes(zhel_run.san)
    assert max(degrees) >= 1
    assert sum(degrees) == zhel_run.san.number_of_attribute_edges()


def test_zhel_deterministic_given_seed():
    params = ZhelModelParameters(steps=60)
    first = generate_zhel_san(params, rng=3, record_history=False)
    second = generate_zhel_san(params, rng=3, record_history=False)
    assert set(first.san.social_edges()) == set(second.san.social_edges())


def test_zhel_parameter_validation():
    with pytest.raises(ValueError):
        ZhelModelParameters(steps=0)
    with pytest.raises(ValueError):
        ZhelModelParameters(steps=10, triangle_probability=1.2)


def test_mag_generates_expected_scale():
    params = MAGModelParameters(num_nodes=300)
    san = generate_mag_san(params, rng=11)
    assert san.number_of_social_nodes() == 300
    assert san.number_of_social_edges() > 0
    # Latent attributes become attribute nodes.
    assert san.number_of_attribute_nodes() <= params.num_attributes
    assert expected_degree(params) > 0


def test_mag_degrees_are_binomial_like():
    """MAG degrees concentrate around the mean (no heavy tail) — the paper's
    stated mismatch with real SANs."""
    san = generate_mag_san(MAGModelParameters(num_nodes=400), rng=13)
    degrees = social_out_degrees(san)
    mean = sum(degrees) / len(degrees)
    assert max(degrees) < mean * 6 + 10


def test_mag_parameter_validation():
    with pytest.raises(ValueError):
        MAGModelParameters(num_nodes=0)
    with pytest.raises(ValueError):
        MAGModelParameters(num_nodes=10, affinity={"11": 0.5})
