"""Property-based tests for model components (distributions, closures, events)."""


import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fitting import DiscreteLognormal, PowerLaw
from repro.models import (
    ArrivalHistory,
    AttachmentParameters,
    LinearAttributePreferentialAttachment,
    predicted_attribute_social_degree_exponent,
    SANModelParameters,
    truncated_normal_moments,
)
from repro.graph import SAN


@given(st.floats(1.2, 4.0), st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_power_law_pmf_positive_and_decreasing(alpha, xmin):
    dist = PowerLaw(alpha=alpha, xmin=xmin)
    ks = np.array([xmin, xmin + 1, xmin + 10, xmin + 100])
    pmf = dist.pmf(ks)
    assert np.all(pmf > 0)
    assert np.all(np.diff(pmf) < 0)


@given(st.floats(-1.0, 3.0), st.floats(0.2, 2.0))
@settings(max_examples=40, deadline=None)
def test_lognormal_log_pmf_finite(mu, sigma):
    dist = DiscreteLognormal(mu=mu, sigma=sigma, xmin=1)
    values = dist.log_pmf([1, 2, 10, 100])
    assert np.all(np.isfinite(values))
    assert np.all(values <= 0.0)


@given(st.floats(-5.0, 10.0), st.floats(0.1, 5.0))
@settings(max_examples=60, deadline=None)
def test_truncated_normal_moments_bounds(mu, sigma):
    mean, variance = truncated_normal_moments(mu, sigma)
    assert mean >= 0.0 or abs(mean) < 1e-9
    assert mean >= mu - 1e-9  # truncation can only raise the mean
    assert 0.0 <= variance <= sigma * sigma + 1e-9


@given(st.floats(0.01, 0.9))
@settings(max_examples=50, deadline=None)
def test_theorem_two_exponent_above_two(p):
    params = SANModelParameters(steps=10, new_attribute_probability=p)
    exponent = predicted_attribute_social_degree_exponent(params)
    assert exponent > 2.0


@given(
    st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=1, max_size=40),
    st.floats(0.0, 50.0),
)
@settings(max_examples=40, deadline=None)
def test_lapa_weights_nonnegative_and_monotone_in_beta(edges, beta):
    san = SAN()
    for source, target in edges:
        if source != target:
            san.add_social_edge(source, target)
    san.add_attribute_edge(0, "a")
    san.add_attribute_edge(1, "a")
    low = LinearAttributePreferentialAttachment(AttachmentParameters(alpha=1.0, beta=0.0))
    high = LinearAttributePreferentialAttachment(AttachmentParameters(alpha=1.0, beta=beta))
    weight_low = low.weight(san, 0, 1)
    weight_high = high.weight(san, 0, 1)
    assert weight_low > 0 and weight_high > 0
    assert weight_high >= weight_low


@given(st.integers(1, 30))
@settings(max_examples=30, deadline=None)
def test_arrival_history_replay_is_consistent(num_nodes):
    history = ArrivalHistory()
    for node in range(num_nodes):
        history.record_node(node)
        if node > 0:
            history.record_social_link(node, node - 1)
        history.record_attribute_link(node, f"a{node % 3}")
    final = history.final_san()
    assert final.number_of_social_nodes() == num_nodes
    assert final.number_of_social_edges() == num_nodes - 1
    # State yielded before each event never contains that event's edge.
    for state, event in history.replay():
        if event.kind == "social":
            assert not state.has_social_edge(event.first, event.second)
        if event.kind == "attribute":
            assert not state.has_attribute_edge(event.first, event.second)
