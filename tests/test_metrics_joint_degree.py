"""Tests for knn curves and assortativity coefficients."""

import pytest

from repro.graph import san_from_edge_lists
from repro.metrics import (
    attribute_assortativity,
    attribute_knn,
    social_assortativity,
    social_knn,
    undirected_degree_assortativity,
)


def test_social_knn_clique(clique_san):
    points = social_knn(clique_san)
    # Every node has out-degree 5 and its neighbors all have in-degree 5.
    assert points == [(5, pytest.approx(5.0))]


def test_social_knn_star():
    # Star: hub 0 -> leaves; leaves have in-degree 1, hub has in-degree 0.
    san = san_from_edge_lists([(0, i) for i in range(1, 6)] + [(i, 0) for i in range(1, 6)])
    points = dict(social_knn(san))
    # Hub out-degree 5 connects to leaves with in-degree 1.
    assert points[5] == pytest.approx(1.0)
    # Leaves out-degree 1 connect to the hub with in-degree 5.
    assert points[1] == pytest.approx(5.0)


def test_social_assortativity_range(figure1_san, clique_san):
    value = social_assortativity(figure1_san)
    assert -1.0 <= value <= 1.0
    # Clique is perfectly regular -> correlation degenerate -> 0.
    assert social_assortativity(clique_san) == 0.0


def test_social_assortativity_star_is_negative():
    san = san_from_edge_lists([(0, i) for i in range(1, 8)] + [(i, 0) for i in range(1, 8)])
    assert social_assortativity(san) < 0


def test_undirected_degree_assortativity(figure1_san):
    value = undirected_degree_assortativity(figure1_san)
    assert -1.0 <= value <= 1.0


def test_attribute_knn(figure1_san):
    points = dict(attribute_knn(figure1_san))
    # Every attribute node has 2 members in the fixture.
    assert set(points) == {2}
    assert points[2] > 0


def test_attribute_assortativity_range(figure1_san):
    value = attribute_assortativity(figure1_san)
    assert -1.0 <= value <= 1.0


def test_assortativity_empty():
    from repro.graph import SAN

    assert social_assortativity(SAN()) == 0.0
    assert attribute_assortativity(SAN()) == 0.0
    assert social_knn(SAN()) == []
    assert attribute_knn(SAN()) == []
