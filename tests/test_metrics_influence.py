"""Tests for the Section 4.2 attribute-influence analyses."""

import pytest

from repro.graph import san_from_edge_lists
from repro.metrics import (
    attribute_influence_report,
    degree_by_top_attribute_values,
    degree_stats_for_attribute,
    reciprocity_boost_from_attributes,
    fine_grained_reciprocity,
)


def test_degree_stats_for_attribute(figure1_san):
    stats = degree_stats_for_attribute(figure1_san, "employer:Google")
    assert stats is not None
    assert stats.attr_type == "employer"
    assert stats.value == "Google"
    assert stats.num_users == 2
    assert stats.percentile_25 <= stats.median <= stats.percentile_75
    assert degree_stats_for_attribute(figure1_san, "employer:None") is None


def test_degree_by_top_attribute_values(figure1_san):
    table = degree_by_top_attribute_values(figure1_san, "employer", count=3)
    assert len(table) == 1
    assert table[0].value == "Google"


def test_attribute_influence_report_keys(figure1_san):
    report = attribute_influence_report(figure1_san, figure1_san)
    assert "fine_grained_reciprocity" in report
    assert "clustering_by_type" in report
    assert set(report["degree_by_attribute_value"]) == {"employer", "major"}


def _influence_pair():
    earlier = san_from_edge_lists(
        [(1, 2), (3, 4), (5, 6), (7, 8)],
        [
            (1, "employer", "G"), (2, "employer", "G"),
            (5, "employer", "G"), (6, "employer", "G"),
            (3, "city", "X"), (4, "city", "Y"),
        ],
    )
    later = earlier.copy()
    later.add_social_edge(2, 1)
    later.add_social_edge(6, 5)
    later.add_social_edge(4, 3)
    return earlier, later


def test_reciprocity_boost_from_attributes():
    earlier, later = _influence_pair()
    fine = fine_grained_reciprocity(earlier, later)
    boost = reciprocity_boost_from_attributes(fine)
    # Attribute-sharing pairs reciprocated 2/2, non-sharing 1/2 -> boost 2x.
    assert boost == pytest.approx(2.0)


def test_reciprocity_boost_none_when_no_shared_pairs(figure1_san):
    fine = fine_grained_reciprocity(figure1_san, figure1_san)
    # May legitimately be None (no shared-attribute one-way links reciprocate
    # in the static fixture) or a finite float; just assert type stability.
    boost = reciprocity_boost_from_attributes(fine)
    assert boost is None or boost >= 0.0
