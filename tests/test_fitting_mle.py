"""Tests for maximum-likelihood fitting of the candidate distributions."""

import numpy as np
import pytest

from repro.fitting import (
    DiscreteLognormal,
    PowerLaw,
    fit_exponential,
    fit_lognormal,
    fit_lognormal_parameters_over_time,
    fit_power_law,
    fit_power_law_exponent_over_time,
    fit_power_law_with_cutoff,
)


RNG = np.random.default_rng(11)


def test_fit_power_law_recovers_exponent():
    true = PowerLaw(alpha=2.4, xmin=1)
    samples = true.sample(6000, RNG)
    fit = fit_power_law(samples)
    assert fit.distribution.alpha == pytest.approx(2.4, abs=0.15)
    assert fit.num_samples == 6000
    assert fit.log_likelihood < 0


def test_fit_power_law_with_xmin():
    true = PowerLaw(alpha=2.8, xmin=3)
    samples = true.sample(4000, RNG)
    fit = fit_power_law(samples, xmin=3)
    assert fit.distribution.alpha == pytest.approx(2.8, abs=0.2)


def test_fit_lognormal_recovers_parameters():
    true = DiscreteLognormal(mu=1.8, sigma=0.9, xmin=1)
    samples = true.sample(6000, RNG)
    fit = fit_lognormal(samples)
    assert fit.distribution.mu == pytest.approx(1.8, abs=0.2)
    assert fit.distribution.sigma == pytest.approx(0.9, abs=0.2)


def test_fit_rejects_empty_or_all_below_xmin():
    with pytest.raises(ValueError):
        fit_power_law([], xmin=1)
    with pytest.raises(ValueError):
        fit_lognormal([1, 2, 3], xmin=10)


def test_fit_exponential():
    rng = np.random.default_rng(3)
    samples = rng.geometric(p=0.3, size=5000)
    fit = fit_exponential(samples)
    # Geometric(p) corresponds to rate -ln(1-p) ~ 0.357.
    assert fit.distribution.rate == pytest.approx(0.357, abs=0.08)


def test_fit_power_law_with_cutoff_improves_on_pure_power_law_for_cutoff_data():
    from repro.fitting import PowerLawWithCutoff

    true = PowerLawWithCutoff(alpha=1.6, cutoff_rate=0.08, xmin=1)
    samples = true.sample(4000, RNG)
    plain = fit_power_law(samples)
    with_cutoff = fit_power_law_with_cutoff(samples)
    assert with_cutoff.log_likelihood >= plain.log_likelihood - 1e-6


def test_fit_result_aic_penalises_parameters():
    true = PowerLaw(alpha=2.2, xmin=1)
    samples = true.sample(2000, RNG)
    plain = fit_power_law(samples)
    with_cutoff = fit_power_law_with_cutoff(samples)
    # The cutoff model has one more parameter; on pure power-law data its AIC
    # should not be dramatically better.
    assert with_cutoff.aic >= plain.aic - 10


def test_parameters_over_time_helpers():
    lognormal_sequences = []
    power_sequences = []
    for day in (1, 2, 3):
        lognormal_sequences.append(
            (day, DiscreteLognormal(mu=1.0 + 0.1 * day, sigma=0.8).sample(1500, RNG))
        )
        power_sequences.append((day, PowerLaw(alpha=2.5, xmin=1).sample(1500, RNG)))
    lognormal_series = fit_lognormal_parameters_over_time(lognormal_sequences)
    assert [day for day, _, _ in lognormal_series] == [1, 2, 3]
    assert lognormal_series[2][1] > lognormal_series[0][1]  # mu grows over time
    power_series = fit_power_law_exponent_over_time(power_sequences)
    assert all(2.0 < alpha < 3.0 for _, alpha in power_series)


def test_parameters_over_time_skips_tiny_samples():
    series = fit_lognormal_parameters_over_time([(1, [1, 2, 3])])
    assert series == []
