"""Tests for the candidate discrete distributions."""

import math

import numpy as np
import pytest

from repro.fitting import (
    DiscreteExponential,
    DiscreteLognormal,
    PowerLaw,
    PowerLawWithCutoff,
    truncated_normal_mean_variance,
)


RNG = np.random.default_rng(7)


def test_power_law_pmf_normalises():
    dist = PowerLaw(alpha=2.5, xmin=1)
    ks = np.arange(1, 20000)
    assert float(np.sum(dist.pmf(ks))) == pytest.approx(1.0, abs=1e-2)


def test_power_law_pmf_monotone_decreasing():
    dist = PowerLaw(alpha=2.0, xmin=1)
    pmf = dist.pmf([1, 2, 5, 10, 100])
    assert all(a > b for a, b in zip(pmf, pmf[1:]))


def test_power_law_rejects_below_xmin():
    dist = PowerLaw(alpha=2.5, xmin=5)
    with pytest.raises(ValueError):
        dist.log_pmf([1])


def test_power_law_sampling_respects_xmin_and_tail():
    dist = PowerLaw(alpha=2.5, xmin=2)
    samples = dist.sample(5000, RNG)
    assert samples.min() >= 2
    # Heavy tail: some samples should exceed 20.
    assert samples.max() > 20


def test_lognormal_pmf_normalises():
    dist = DiscreteLognormal(mu=1.0, sigma=0.7, xmin=1)
    ks = np.arange(1, 5000)
    assert float(np.sum(dist.pmf(ks))) == pytest.approx(1.0, abs=1e-3)


def test_lognormal_mode_near_exp_mu():
    dist = DiscreteLognormal(mu=2.0, sigma=0.5, xmin=1)
    ks = np.arange(1, 200)
    pmf = dist.pmf(ks)
    mode = ks[int(np.argmax(pmf))]
    assert 3 <= mode <= 9  # exp(2 - 0.25) ~ 5.8 for the 1/k-weighted form


def test_lognormal_sampling_statistics():
    dist = DiscreteLognormal(mu=1.5, sigma=0.6, xmin=1)
    samples = dist.sample(8000, RNG)
    assert samples.min() >= 1
    log_mean = float(np.mean(np.log(samples)))
    assert log_mean == pytest.approx(1.5, abs=0.15)


def test_power_law_with_cutoff_decays_faster_than_power_law():
    plain = PowerLaw(alpha=2.0, xmin=1)
    cutoff = PowerLawWithCutoff(alpha=2.0, cutoff_rate=0.05, xmin=1)
    ratio_small = cutoff.pmf([2])[0] / plain.pmf([2])[0]
    ratio_large = cutoff.pmf([200])[0] / plain.pmf([200])[0]
    assert ratio_large < ratio_small


def test_power_law_with_cutoff_sampling():
    dist = PowerLawWithCutoff(alpha=1.8, cutoff_rate=0.1, xmin=1)
    samples = dist.sample(2000, RNG)
    assert samples.min() >= 1
    assert samples.mean() < 40


def test_exponential_pmf_and_sampling():
    dist = DiscreteExponential(rate=0.5, xmin=1)
    ks = np.arange(1, 200)
    assert float(np.sum(dist.pmf(ks))) == pytest.approx(1.0, abs=1e-6)
    samples = dist.sample(5000, RNG)
    assert samples.min() >= 1
    assert samples.mean() == pytest.approx(1.0 / (1 - math.exp(-0.5)), rel=0.1)


def test_parameters_and_names():
    assert PowerLaw(2.1).name == "power_law"
    assert DiscreteLognormal(1, 1).name == "lognormal"
    assert PowerLawWithCutoff(2, 0.1).name == "power_law_with_cutoff"
    assert DiscreteExponential(0.3).name == "exponential"
    assert PowerLaw(2.1, xmin=3).parameters()["xmin"] == 3


def test_truncated_normal_mean_variance():
    # With mu >> sigma truncation is negligible.
    mean, variance = truncated_normal_mean_variance(10.0, 1.0)
    assert mean == pytest.approx(10.0, abs=0.01)
    assert variance == pytest.approx(1.0, abs=0.01)
    # With mu = 0 the truncated mean is sigma * sqrt(2/pi).
    mean0, variance0 = truncated_normal_mean_variance(0.0, 2.0)
    assert mean0 == pytest.approx(2.0 * math.sqrt(2 / math.pi), rel=1e-3)
    assert variance0 < 4.0
    with pytest.raises(ValueError):
        truncated_normal_mean_variance(1.0, 0.0)
