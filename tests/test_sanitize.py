"""Tests for the runtime sanitizer (``repro.sanitize``).

Each injected fault from the PR brief is exercised end to end:

* a deliberately divergent frozen kernel is caught by the backend-parity
  check with an error naming the operation and both backends;
* a worker-side write through a shared input view raises instead of
  corrupting sibling chunks (``attach_output_views`` stays writeable);
* a tampered artifact cache entry is caught by payload re-hashing;
* an unexpected NaN output raises unless the operation is allowlisted.

Plus unit coverage of the comparison/hashing primitives and the report.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import sanitize
from repro.engine import parallel, registry
from repro.engine.registry import FROZEN, MUTABLE, dispatch
from repro.experiments.artifacts import (
    ArtifactResolver,
    ArtifactStore,
    register_artifact,
    unregister_artifact,
)
from repro.graph import san_from_edge_lists


@pytest.fixture
def armed(monkeypatch):
    """Arm the sanitizer and start from a clean report."""
    monkeypatch.setenv(sanitize.ENV_VAR, "1")
    sanitize.reset_report()
    yield
    sanitize.reset_report()


@pytest.fixture
def small_frozen():
    return san_from_edge_lists([(1, 2), (2, 1), (2, 3)]).freeze()


def _register(op, fn, backend):
    registry.register(op, fn, backend=backend)


def _unregister(op):
    registry._registry.pop(op, None)


# ----------------------------------------------------------------------
# Backend parity at dispatch time
# ----------------------------------------------------------------------
class TestBackendParity:
    def test_divergent_frozen_kernel_is_caught(self, armed, small_frozen):
        op = "test.sanitize.divergent"
        _register(op, lambda graph: 2.5, MUTABLE)
        _register(op, lambda graph: 1.5, FROZEN)
        try:
            with pytest.raises(sanitize.BackendParityError) as excinfo:
                dispatch(op, small_frozen)
            message = str(excinfo.value)
            assert op in message
            assert "'frozen'" in message and "'mutable'" in message
            assert "1.5" in message and "2.5" in message
            divergences = sanitize.report()["parity"]["divergences"]
            assert len(divergences) == 1
            assert divergences[0]["op"] == op
        finally:
            _unregister(op)

    def test_agreeing_kernels_pass_and_tally(self, armed, small_frozen):
        op = "test.sanitize.agreeing"
        _register(op, lambda graph: graph.number_of_social_edges(), MUTABLE)
        _register(op, lambda graph: graph.number_of_social_edges(), FROZEN)
        try:
            assert dispatch(op, small_frozen) == 3
            report = sanitize.report()
            assert report["parity"]["checked"] == 1
            assert report["parity"]["divergences"] == []
            assert report["ops"][op] == {"frozen:parity-vs-mutable": 1}
        finally:
            _unregister(op)

    def test_float_roundoff_tolerated_frozen_vs_portable(self, armed, small_frozen):
        op = "test.sanitize.roundoff"
        _register(op, lambda graph: 0.1 + 0.2, MUTABLE)
        _register(op, lambda graph: 0.3, FROZEN)  # differs only in roundoff
        try:
            assert dispatch(op, small_frozen) == 0.3
            assert sanitize.report()["parity"]["divergences"] == []
        finally:
            _unregister(op)

    def test_stochastic_frozen_kernel_skipped(self, armed, small_frozen):
        op = "test.sanitize.stochastic"
        _register(op, lambda graph, seed=0: seed, MUTABLE)
        _register(op, lambda graph, seed=0: seed + 1, FROZEN)  # would diverge
        try:
            assert dispatch(op, small_frozen, seed=7) == 8
            skipped = sanitize.report()["parity"]["skipped"]
            assert skipped.get("stochastic-draw-order") == 1
        finally:
            _unregister(op)

    def test_live_rng_argument_skips_parity(self, armed, small_frozen):
        op = "test.sanitize.live_rng"
        _register(op, lambda graph, gen: 1.0, MUTABLE)
        _register(op, lambda graph, gen: 2.0, FROZEN)  # would diverge
        try:
            result = dispatch(op, small_frozen, np.random.default_rng(3))
            assert result == 2.0
            skipped = sanitize.report()["parity"]["skipped"]
            assert skipped.get("live-rng-argument") == 1
        finally:
            _unregister(op)

    def test_disarmed_dispatch_never_runs_reference(self, monkeypatch, small_frozen):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        calls = []
        op = "test.sanitize.disarmed"
        _register(op, lambda graph: calls.append("mutable") or 0, MUTABLE)
        _register(op, lambda graph: calls.append("frozen") or 0, FROZEN)
        try:
            dispatch(op, small_frozen)
            assert calls == ["frozen"]
        finally:
            _unregister(op)


# ----------------------------------------------------------------------
# NaN/Inf screening
# ----------------------------------------------------------------------
class TestNonFiniteScreen:
    def test_unexpected_nan_raises(self, armed, small_frozen):
        op = "test.sanitize.nan_out"
        _register(op, lambda graph: {"score": float("nan")}, MUTABLE)
        try:
            with pytest.raises(sanitize.NonFiniteOutputError) as excinfo:
                dispatch(op, san_from_edge_lists([(1, 2)]))
            message = str(excinfo.value)
            assert op in message
            assert "$['score']" in message
            assert "NONFINITE_ALLOWED" in message
        finally:
            _unregister(op)

    def test_allowlisted_op_passes(self, armed, monkeypatch):
        op = "test.sanitize.loglik"
        monkeypatch.setitem(
            sanitize.__dict__, "NONFINITE_ALLOWED", sanitize.NONFINITE_ALLOWED | {op}
        )
        _register(op, lambda graph: float("-inf"), MUTABLE)
        try:
            assert dispatch(op, san_from_edge_lists([(1, 2)])) == float("-inf")
            assert sanitize.report()["nonfinite"]["allowlisted"] == [op]
        finally:
            _unregister(op)

    def test_find_nonfinite_walks_containers(self):
        assert sanitize.find_nonfinite({"a": [1.0, 2.0]}) is None
        found = sanitize.find_nonfinite({"a": [1.0, np.array([0.0, np.inf])]})
        assert found == "$['a'][1]: 1 non-finite element(s)"
        assert sanitize.find_nonfinite(np.array([1, 2], dtype=np.int64)) is None


# ----------------------------------------------------------------------
# Shared-memory hygiene
# ----------------------------------------------------------------------
class TestSharedViewClamp:
    @pytest.fixture(autouse=True)
    def _inherited_tracker(self, monkeypatch):
        # Simulating "worker side" in the owner process: keep _attach from
        # unregistering the owner's segment with the resource tracker.
        monkeypatch.setattr(parallel, "_tracker_inherited", True)

    def test_worker_side_input_views_are_read_only(self, armed):
        shared = parallel.SharedCSR({"registers": np.arange(6, dtype=np.int64)})
        try:
            # Simulate the worker side: workers never own the segment
            # (``_worker_init`` clears ``_LIVE_SEGMENTS`` in the child).
            owner = parallel._LIVE_SEGMENTS.pop(shared.spec.name)
            try:
                views = parallel.attach_views(shared.spec)
                assert not views["registers"].flags.writeable
                with pytest.raises(ValueError, match="read-only"):
                    views["registers"][0] = 99
                # The explicit output opt-out stays writeable.
                out = parallel.attach_output_views(shared.spec)
                out["registers"][0] = 99
                assert shared.view("registers")[0] == 99
            finally:
                parallel._LIVE_SEGMENTS[shared.spec.name] = owner
        finally:
            shared.unlink()

    def test_owner_views_stay_writeable(self, armed):
        shared = parallel.SharedCSR({"x": np.zeros(3, dtype=np.float64)})
        try:
            views = parallel.attach_views(shared.spec)
            assert views["x"].flags.writeable
        finally:
            shared.unlink()

    def test_disarmed_worker_views_writeable(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        shared = parallel.SharedCSR({"x": np.zeros(3, dtype=np.float64)})
        try:
            owner = parallel._LIVE_SEGMENTS.pop(shared.spec.name)
            try:
                views = parallel.attach_views(shared.spec)
                assert views["x"].flags.writeable
            finally:
                parallel._LIVE_SEGMENTS[shared.spec.name] = owner
        finally:
            shared.unlink()


# ----------------------------------------------------------------------
# Artifact payload integrity
# ----------------------------------------------------------------------
class _Scenario:
    name = "sanitize-test"

    def cache_token(self):
        return {"scenario": self.name}


def _register_blob(tmp_path_name):
    def build(resolver):
        return "payload-" + tmp_path_name

    def save(value, directory):
        (directory / "blob.txt").write_text(value, encoding="utf-8")

    def load(directory):
        return (directory / "blob.txt").read_text(encoding="utf-8")

    register_artifact(tmp_path_name, build, save=save, load=load)


class TestArtifactIntegrity:
    def test_tampered_cache_entry_is_caught(self, armed, tmp_path):
        name = "test_sanitize_blob"
        _register_blob(name)
        try:
            first = ArtifactResolver(_Scenario(), cache_dir=tmp_path)
            value = first.artifact(name)
            assert value == "payload-" + name
            # Tamper with the committed payload behind the store's back.
            store = ArtifactStore(tmp_path)
            key = first.key(name)
            entry = store.entry_path(name, key)
            (entry / "blob.txt").write_text("corrupted", encoding="utf-8")
            second = ArtifactResolver(_Scenario(), cache_dir=tmp_path)
            with pytest.raises(sanitize.ArtifactIntegrityError) as excinfo:
                second.artifact(name)
            message = str(excinfo.value)
            assert name in message and key in message
            assert sanitize.report()["artifacts"]["mismatches"][0]["artifact"] == name
        finally:
            unregister_artifact(name)

    def test_clean_cache_hit_verifies(self, armed, tmp_path):
        name = "test_sanitize_clean_blob"
        _register_blob(name)
        try:
            ArtifactResolver(_Scenario(), cache_dir=tmp_path).artifact(name)
            again = ArtifactResolver(_Scenario(), cache_dir=tmp_path)
            assert again.artifact(name) == "payload-" + name
            assert again.events[-1].status == "cached"
            assert sanitize.report()["artifacts"]["verified"] == 1
        finally:
            unregister_artifact(name)

    def test_legacy_entry_without_digest_is_skipped(self, armed, tmp_path):
        name = "test_sanitize_legacy_blob"
        _register_blob(name)
        try:
            first = ArtifactResolver(_Scenario(), cache_dir=tmp_path)
            first.artifact(name)
            entry = ArtifactStore(tmp_path).entry_path(name, first.key(name))
            marker = json.loads((entry / "ARTIFACT.json").read_text(encoding="utf-8"))
            del marker["payload_sha256"]
            (entry / "ARTIFACT.json").write_text(json.dumps(marker), encoding="utf-8")
            again = ArtifactResolver(_Scenario(), cache_dir=tmp_path)
            assert again.artifact(name) == "payload-" + name
            assert sanitize.report()["artifacts"]["verified"] == 0
        finally:
            unregister_artifact(name)

    def test_hash_payload_sensitive_to_rename_and_content(self, tmp_path):
        (tmp_path / "a.txt").write_text("one", encoding="utf-8")
        (tmp_path / "b.txt").write_text("two", encoding="utf-8")
        baseline = sanitize.hash_payload(tmp_path)
        assert sanitize.hash_payload(tmp_path) == baseline
        (tmp_path / "ARTIFACT.json").write_text("{}", encoding="utf-8")
        assert sanitize.hash_payload(tmp_path) == baseline  # marker excluded
        (tmp_path / "b.txt").rename(tmp_path / "c.txt")
        renamed = sanitize.hash_payload(tmp_path)
        assert renamed != baseline
        (tmp_path / "c.txt").write_text("TWO", encoding="utf-8")
        assert sanitize.hash_payload(tmp_path) != renamed


# ----------------------------------------------------------------------
# Comparison primitive
# ----------------------------------------------------------------------
class TestCompareResults:
    def test_exact_floats(self):
        assert sanitize.compare_results(1.5, 1.5, exact=True) is None
        found = sanitize.compare_results(1.5, 1.5 + 1e-12, exact=True)
        assert found is not None and found.startswith("$")

    def test_close_floats(self):
        assert sanitize.compare_results(0.1 + 0.2, 0.3, exact=False) is None
        assert sanitize.compare_results(0.3, 0.4, exact=False) is not None

    def test_matching_nans_agree(self):
        assert sanitize.compare_results(float("nan"), float("nan"), exact=True) is None
        left = np.array([1.0, np.nan])
        assert sanitize.compare_results(left, left.copy(), exact=True) is None

    def test_array_shape_and_values(self):
        a = np.arange(4)
        assert sanitize.compare_results(a, a.copy(), exact=True) is None
        found = sanitize.compare_results(a, a[:3], exact=True)
        assert "shape mismatch" in found
        b = a.copy()
        b[2] = 99
        assert "1 position(s)" in sanitize.compare_results(a, b, exact=True)

    def test_nested_containers_report_path(self):
        left = {"deg": [1, 2, {"mean": 3.0}]}
        right = {"deg": [1, 2, {"mean": 4.0}]}
        found = sanitize.compare_results(left, right, exact=True)
        assert found == "$['deg'][2]['mean']: 3.0 != 4.0"

    def test_dict_key_mismatch(self):
        found = sanitize.compare_results({"a": 1}, {"b": 1}, exact=True)
        assert "dict keys differ" in found

    def test_scalar_mismatch(self):
        assert sanitize.compare_results(3, 3, exact=True) is None
        assert sanitize.compare_results(3, 4, exact=True) == "$: 3 != 4"


# ----------------------------------------------------------------------
# The report artifact
# ----------------------------------------------------------------------
class TestReport:
    def test_write_report_round_trips(self, armed, tmp_path, small_frozen):
        op = "test.sanitize.reported"
        _register(op, lambda graph: 42, MUTABLE)
        _register(op, lambda graph: 42, FROZEN)
        try:
            dispatch(op, small_frozen)
        finally:
            _unregister(op)
        path = sanitize.write_report(tmp_path / "nested" / "sanitizer_report.json")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["parity"]["checked"] == 1
        assert payload["nonfinite"]["checked"] == 1
        assert payload["ops"][op] == {"frozen:parity-vs-mutable": 1}
