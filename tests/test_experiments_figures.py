"""Tests for the per-figure experiment drivers (structure and invariants).

The benchmark harness checks the paper's qualitative findings on the full
workload; these tests check that every driver returns well-formed data on the
small session workload so the harness cannot silently break.
"""


from repro.experiments import (
    figure2_3_growth,
    figure5_degree_distributions,
    figure7_social_jdd,
    figure9_clustering_distributions,
    figure10_attribute_degrees,
    figure12_attribute_jdd,
    figure13_influence,
    figure14_degree_by_attribute_value,
    figure16_model_degree_distributions,
    figure17_jdd_and_clustering,
    figure18_ablations,
    figure19_applications,
    section22_crawl_coverage,
    section52_closure_comparison,
)


def test_figure2_3_growth_driver(tiny_snapshots):
    result = figure2_3_growth(list(tiny_snapshots))
    assert set(result) == {"social_nodes", "attribute_nodes", "social_links", "attribute_links"}
    for series in result.values():
        assert len(series) == len(tiny_snapshots)


def test_figure5_driver(tiny_final_san):
    result = figure5_degree_distributions(tiny_final_san)
    for key in ("outdegree", "indegree"):
        assert result[key]["best_fit"] in (
            "lognormal",
            "power_law",
            "power_law_with_cutoff",
            "exponential",
        )
        assert result[key]["distribution"]
        assert result[key]["lognormal_sigma"] > 0


def test_figure7_and_12_drivers(tiny_final_san, tiny_snapshots):
    social = figure7_social_jdd(tiny_final_san, list(tiny_snapshots))
    attribute = figure12_attribute_jdd(tiny_final_san, list(tiny_snapshots))
    assert social["knn"] and attribute["knn"]
    assert len(social["assortativity_evolution"]) == len(tiny_snapshots)
    assert len(attribute["assortativity_evolution"]) == len(tiny_snapshots)


def test_figure9_driver(tiny_final_san):
    result = figure9_clustering_distributions(tiny_final_san, rng=1)
    assert set(result) == {"social", "attribute", "attribute_subsampled"}
    for series in result.values():
        assert all(0.0 <= value <= 1.0 for _, value in series)


def test_figure10_driver(tiny_final_san):
    result = figure10_attribute_degrees(tiny_final_san)
    assert result["attribute_degree"]["lognormal_sigma"] > 0
    assert result["attribute_social_degree"]["power_law_alpha"] > 1.0


def test_figure13_and_14_drivers(tiny_snapshots):
    earlier, later = tiny_snapshots.halfway(), tiny_snapshots.last()
    influence = figure13_influence(earlier, later)
    assert set(influence["reciprocity_by_bucket"]) == {0, 1, 2}
    assert set(influence["clustering_by_type"]) >= {"employer", "city"}
    degrees = figure14_degree_by_attribute_value(later, top_values=3)
    assert set(degrees) == {"employer", "major"}
    for rows in degrees.values():
        for row in rows:
            assert row["p25"] <= row["median"] <= row["p75"]


def test_section22_and_52_drivers(tiny_snapshots, tiny_evolution):
    coverage = section22_crawl_coverage(tiny_snapshots)
    assert all(0.0 <= value <= 1.0 for value in coverage.values())
    closure = section52_closure_comparison(tiny_evolution, max_edges=300, rng=3)
    assert closure["breakdown"]["total"] > 0
    assert set(closure["average_log_probabilities"]) == {"baseline", "random_random", "rr_san"}
    assert closure["num_edges_scored"] <= 300


def test_figure16_17_drivers(tiny_final_san, model_run, zhel_run):
    fits = figure16_model_degree_distributions(tiny_final_san, model_run.san, zhel_run.san)
    assert set(fits) == {"reference", "san_model", "zhel"}
    for network in fits.values():
        assert "outdegree" in network
    curves = figure17_jdd_and_clustering(model_run.san, zhel_run.san, tiny_final_san)
    for network in ("reference", "san_model", "zhel"):
        assert curves[network]["attribute_knn"]


def test_figure18_driver(model_run):
    result = figure18_ablations(model_run, model_run.san, model_run.san)
    # Using the same SAN for every variant: the statistics must be identical.
    assert (
        result["full"]["mean_attribute_clustering"]
        == result["without_lapa"]["mean_attribute_clustering"]
        == result["without_focal_closure"]["mean_attribute_clustering"]
    )
    assert result["full"]["indegree"]["best_fit"] in (
        "lognormal",
        "power_law",
        "power_law_with_cutoff",
        "exponential",
    )


def test_figure19_driver(tiny_final_san, model_run, zhel_run):
    result = figure19_applications(
        tiny_final_san,
        model_run.san,
        zhel_run.san,
        compromised_counts=[5, 20],
        rng=4,
    )
    assert set(result) == {"sybil", "anonymity", "relative_errors"}
    for application in ("sybil", "anonymity"):
        assert set(result[application]) == {"google_plus", "san_model_fc", "zhel"}
        for series in result[application].values():
            assert len(series) == 2
    assert set(result["relative_errors"]["sybil"]) == {"san_model_fc", "zhel"}
