"""Unit tests for the bipartite social-attribute layer."""

import pytest

from repro.graph import BipartiteAttributeGraph
from repro.graph.errors import EdgeNotFoundError, NodeNotFoundError


def test_add_link_creates_endpoints():
    graph = BipartiteAttributeGraph()
    assert graph.add_link(1, "employer:Google") is True
    assert graph.has_social_node(1)
    assert graph.has_attribute_node("employer:Google")
    assert graph.number_of_links() == 1


def test_add_link_idempotent():
    graph = BipartiteAttributeGraph()
    graph.add_link(1, "a")
    assert graph.add_link(1, "a") is False
    assert graph.number_of_links() == 1


def test_attribute_info_defaults_and_explicit_type():
    graph = BipartiteAttributeGraph()
    graph.add_attribute_node("employer:Google", attr_type="employer", value="Google")
    graph.add_link(1, "employer:Google")
    info = graph.attribute_info("employer:Google")
    assert info.attr_type == "employer"
    assert info.value == "Google"
    graph.add_link(2, "mystery")
    assert graph.attribute_type("mystery") == "generic"


def test_attribute_info_missing_raises():
    graph = BipartiteAttributeGraph()
    with pytest.raises(NodeNotFoundError):
        graph.attribute_info("nope")


def test_degrees():
    graph = BipartiteAttributeGraph()
    graph.add_link(1, "a")
    graph.add_link(1, "b")
    graph.add_link(2, "a")
    assert graph.attribute_degree(1) == 2
    assert graph.attribute_degree(2) == 1
    assert graph.social_degree("a") == 2
    assert graph.social_degree("b") == 1
    assert graph.attribute_degree("unknown-user") == 0


def test_common_attributes():
    graph = BipartiteAttributeGraph()
    graph.add_link(1, "a")
    graph.add_link(1, "b")
    graph.add_link(2, "b")
    graph.add_link(2, "c")
    assert graph.common_attributes(1, 2) == {"b"}
    assert graph.common_attributes(1, 1) == {"a", "b"}


def test_remove_link():
    graph = BipartiteAttributeGraph()
    graph.add_link(1, "a")
    graph.remove_link(1, "a")
    assert graph.number_of_links() == 0
    assert not graph.has_link(1, "a")
    with pytest.raises(EdgeNotFoundError):
        graph.remove_link(1, "a")


def test_remove_social_node():
    graph = BipartiteAttributeGraph()
    graph.add_link(1, "a")
    graph.add_link(1, "b")
    graph.add_link(2, "a")
    graph.remove_social_node(1)
    assert not graph.has_social_node(1)
    assert graph.number_of_links() == 1
    assert graph.social_degree("a") == 1
    with pytest.raises(NodeNotFoundError):
        graph.remove_social_node(1)


def test_attribute_nodes_of_type():
    graph = BipartiteAttributeGraph()
    graph.add_attribute_node("employer:Google", attr_type="employer")
    graph.add_attribute_node("city:SF", attr_type="city")
    graph.add_attribute_node("employer:IBM", attr_type="employer")
    employers = set(graph.attribute_nodes_of_type("employer"))
    assert employers == {"employer:Google", "employer:IBM"}
    assert graph.attribute_types() == {"employer", "city"}


def test_links_iteration_and_counts():
    graph = BipartiteAttributeGraph()
    graph.add_link(1, "a")
    graph.add_link(2, "b")
    links = set(graph.links())
    assert links == {(1, "a"), (2, "b")}
    assert graph.number_of_social_nodes() == 2
    assert graph.number_of_attribute_nodes() == 2


def test_copy_is_independent():
    graph = BipartiteAttributeGraph()
    graph.add_link(1, "a")
    clone = graph.copy()
    clone.add_link(2, "a")
    assert graph.number_of_links() == 1
    assert clone.number_of_links() == 2
    assert clone.attribute_info("a") == graph.attribute_info("a")


def test_members_of_missing_attribute_raises():
    graph = BipartiteAttributeGraph()
    with pytest.raises(NodeNotFoundError):
        graph.members_of("ghost")
