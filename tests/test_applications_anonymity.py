"""Tests for the anonymous-communication timing-analysis experiment."""


from repro.applications import (
    AnonymityParameters,
    attack_probability_vs_compromised,
    end_to_end_attack_probability,
)


def test_no_compromised_nodes_means_no_attack(tiny_final_san):
    probability = end_to_end_attack_probability(
        tiny_final_san, set(), params=AnonymityParameters(num_circuits=200), rng=1
    )
    assert probability == 0.0


def test_all_compromised_means_certain_attack(clique_san):
    compromised = set(clique_san.social_nodes())
    probability = end_to_end_attack_probability(
        clique_san, compromised, params=AnonymityParameters(num_circuits=200), rng=2
    )
    # Initiators are honest-only; with everyone compromised no circuits start,
    # so the convention is probability 0 in the degenerate case.
    assert probability == 0.0
    # Compromise all but one node: almost every circuit's first and last
    # relays are compromised (the walk occasionally revisits the honest
    # initiator, so the probability is high but not exactly 1).
    compromised.discard(0)
    probability = end_to_end_attack_probability(
        clique_san, compromised, params=AnonymityParameters(num_circuits=200), rng=2
    )
    assert probability > 0.7


def test_attack_probability_increases_with_compromise(tiny_final_san):
    results = attack_probability_vs_compromised(
        tiny_final_san,
        [0, 30, 120],
        params=AnonymityParameters(num_circuits=400),
        rng=3,
    )
    probabilities = [r.attack_probability for r in results]
    assert probabilities[0] == 0.0
    assert probabilities[2] > probabilities[1] >= 0.0
    assert all(0.0 <= p <= 1.0 for p in probabilities)


def test_attack_probability_roughly_quadratic(clique_san):
    """With f fraction compromised and uniform relay choice, the end-to-end
    attack probability is ~f^2."""
    compromised = {0, 1, 2}
    probability = end_to_end_attack_probability(
        clique_san, compromised, params=AnonymityParameters(num_circuits=3000), rng=4
    )
    # 3 of 6 nodes compromised; relays drawn nearly uniformly -> about 0.25-0.36.
    assert 0.1 < probability < 0.6


def test_compromised_count_capped(figure1_san):
    results = attack_probability_vs_compromised(
        figure1_san, [50], params=AnonymityParameters(num_circuits=100), rng=5
    )
    assert results[0].num_compromised == figure1_san.number_of_social_nodes()
