"""Property-based tests (hypothesis) for the graph substrate and core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import DiGraph, SAN
from repro.metrics import global_reciprocity, social_density
from repro.metrics.degrees import social_in_degrees, social_out_degrees


edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    max_size=120,
)

attribute_lists = st.lists(
    st.tuples(st.integers(0, 30), st.sampled_from(["employer", "city"]), st.integers(0, 8)),
    max_size=60,
)


def _build_san(edges, attributes):
    san = SAN()
    for source, target in edges:
        if source != target:
            san.add_social_edge(source, target)
    for social, attr_type, value in attributes:
        san.add_social_node(social)
        san.add_attribute_edge(social, f"{attr_type}:{value}", attr_type=attr_type, value=str(value))
    return san


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_digraph_degree_sums_equal_edge_count(edges):
    graph = DiGraph()
    for source, target in edges:
        graph.add_edge(source, target)
    total_out = sum(graph.out_degree(node) for node in graph.nodes())
    total_in = sum(graph.in_degree(node) for node in graph.nodes())
    assert total_out == graph.number_of_edges()
    assert total_in == graph.number_of_edges()
    assert len(list(graph.edges())) == graph.number_of_edges()


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_digraph_add_remove_round_trip(edges):
    graph = DiGraph()
    for source, target in edges:
        graph.add_edge(source, target)
    snapshot = set(graph.edges())
    for source, target in snapshot:
        graph.remove_edge(source, target)
    assert graph.number_of_edges() == 0
    assert all(graph.out_degree(node) == 0 for node in graph.nodes())


@given(edge_lists, attribute_lists)
@settings(max_examples=50, deadline=None)
def test_san_counts_consistent(edges, attributes):
    san = _build_san(edges, attributes)
    assert san.number_of_social_edges() == len(set(san.social_edges()))
    assert san.number_of_attribute_edges() == len(set(san.attribute_edges()))
    out_sum = sum(social_out_degrees(san))
    in_sum = sum(social_in_degrees(san))
    assert out_sum == in_sum == san.number_of_social_edges()
    attr_degree_sum = sum(san.attribute_degree(node) for node in san.social_nodes())
    attr_social_sum = sum(
        san.attribute_social_degree(node) for node in san.attribute_nodes()
    )
    assert attr_degree_sum == attr_social_sum == san.number_of_attribute_edges()


@given(edge_lists, attribute_lists)
@settings(max_examples=50, deadline=None)
def test_reciprocity_and_density_bounds(edges, attributes):
    san = _build_san(edges, attributes)
    reciprocity = global_reciprocity(san)
    assert 0.0 <= reciprocity <= 1.0
    assert social_density(san) >= 0.0
    # Reciprocity of a symmetrised SAN is 1.
    symmetric = san.copy()
    for source, target in list(symmetric.social_edges()):
        symmetric.add_social_edge(target, source)
    if symmetric.number_of_social_edges() > 0:
        assert global_reciprocity(symmetric) == 1.0


@given(edge_lists, attribute_lists)
@settings(max_examples=40, deadline=None)
def test_copy_and_subgraph_invariants(edges, attributes):
    san = _build_san(edges, attributes)
    clone = san.copy()
    assert set(clone.social_edges()) == set(san.social_edges())
    assert set(clone.attribute_edges()) == set(san.attribute_edges())
    nodes = list(san.social_nodes())[: max(1, len(list(san.social_nodes())) // 2)]
    sub = san.social_subgraph(nodes)
    kept = set(nodes) & set(san.social_nodes())
    assert set(sub.social_nodes()) == kept
    for source, target in sub.social_edges():
        assert san.has_social_edge(source, target)
