"""Edge-case and parity tests for the kernels added with the dispatch engine:
traversal, components, HyperANF, random walks, sampling, link prediction, and
the application drivers — on degenerate SANs (empty, single node, isolated
attribute-only component) for both backends, with and without scipy."""

from __future__ import annotations

import math
import random

import pytest

from repro.algorithms.components import (
    strongly_connected_components,
    wcc_fraction,
    weakly_connected_components,
)
from repro.algorithms.hyperanf import effective_diameter, neighbourhood_function
from repro.algorithms.random_walk import random_walks
from repro.algorithms.sampling import sample_social_edges
from repro.algorithms.traversal import bfs_distances, sample_distance_distribution
from repro.applications.anonymity import end_to_end_attack_probability
from repro.applications.link_prediction import (
    adamic_adar_scores,
    common_neighbor_counts,
    pair_features,
    pair_features_batch,
    rank_candidate_pairs,
)
from repro.applications.sybil import sybil_identities_vs_compromised
from repro.engine import deps
from repro.graph import SAN, san_from_edge_lists

ATTRIBUTE_TYPES = ["employer", "school", "major", "city"]


def random_san(seed: int, num_social: int = 60, num_edges: int = 240) -> SAN:
    rng = random.Random(seed)
    san = SAN()
    for node in range(num_social):
        san.add_social_node(node)
    for _ in range(num_edges):
        source = rng.randrange(num_social)
        target = rng.randrange(num_social)
        if source == target:
            continue
        san.add_social_edge(source, target)
        if rng.random() < 0.4:
            san.add_social_edge(target, source)
    for _ in range(70):
        social = rng.randrange(num_social)
        attr_type = rng.choice(ATTRIBUTE_TYPES)
        value = f"v{rng.randrange(8)}"
        san.add_attribute_edge(
            social, f"{attr_type}:{value}", attr_type=attr_type, value=value
        )
    return san


def empty_san() -> SAN:
    return SAN()


def single_node_san() -> SAN:
    san = SAN()
    san.add_social_node(1)
    return san


def isolated_attribute_component_san() -> SAN:
    """Two social nodes joined *only* through a shared attribute, next to a
    separate social component: the attribute layer must not leak into the
    social connectivity kernels."""
    san = san_from_edge_lists([(1, 2), (2, 3)])
    san.add_attribute_edge(10, "city:SF", attr_type="city", value="SF")
    san.add_attribute_edge(11, "city:SF", attr_type="city", value="SF")
    return san


EDGE_CASES = [empty_san, single_node_san, isolated_attribute_component_san]


@pytest.fixture(params=["scipy", "no-scipy"])
def scipy_mode(request, monkeypatch):
    if request.param == "no-scipy":
        monkeypatch.setenv(deps.DISABLE_ENV_VAR, "1")
        assert not deps.have_scipy()
    return request.param


class TestComponentsKernels:
    def test_parity_random(self, scipy_mode):
        for seed in (5, 6):
            san = random_san(seed)
            frozen = san.freeze()
            assert weakly_connected_components(frozen.social) == (
                weakly_connected_components(san.social)
            )
            # Ordering is canonical (-size, earliest member) on every backend.
            assert strongly_connected_components(frozen.social) == (
                strongly_connected_components(san.social)
            )

    @pytest.mark.parametrize("factory", EDGE_CASES)
    def test_edge_cases(self, factory, scipy_mode):
        san = factory()
        frozen = san.freeze()
        assert weakly_connected_components(frozen.social) == (
            weakly_connected_components(san.social)
        )
        assert wcc_fraction(frozen.social) == wcc_fraction(san.social)

    def test_attribute_only_component_not_socially_connected(self, scipy_mode):
        san = isolated_attribute_component_san()
        for graph in (san.social, san.freeze().social):
            components = weakly_connected_components(graph)
            # {1,2,3} social chain; 10 and 11 share only an attribute.
            assert components[0] == {1, 2, 3}
            assert {10} in components and {11} in components

    def test_self_loop_does_not_connect(self, scipy_mode):
        san = san_from_edge_lists([(1, 1), (2, 3)])
        for graph in (san.social, san.freeze().social):
            components = weakly_connected_components(graph)
            assert {1} in components
            assert {2, 3} in components


class TestTraversalKernels:
    def test_bfs_parity_including_max_depth(self):
        for seed in (7, 8):
            san = random_san(seed)
            frozen = san.freeze()
            for source in (0, 13, 59):
                assert bfs_distances(frozen.social, source) == (
                    bfs_distances(san.social, source)
                )
                assert bfs_distances(frozen.social, source, max_depth=2) == (
                    bfs_distances(san.social, source, max_depth=2)
                )

    def test_distance_distribution_parity(self):
        san = random_san(9)
        frozen = san.freeze()
        assert sample_distance_distribution(frozen.social, num_sources=15, rng=3) == (
            sample_distance_distribution(san.social, num_sources=15, rng=3)
        )

    @pytest.mark.parametrize("factory", EDGE_CASES)
    def test_edge_cases(self, factory):
        san = factory()
        frozen = san.freeze()
        assert sample_distance_distribution(frozen.social, num_sources=5, rng=1) == (
            sample_distance_distribution(san.social, num_sources=5, rng=1)
        )
        for node in san.social_nodes():
            assert bfs_distances(frozen.social, node) == bfs_distances(san.social, node)


class TestHyperANFKernels:
    def test_neighbourhood_function_parity(self):
        for seed in (10, 11):
            san = random_san(seed)
            frozen = san.freeze()
            mutable_totals = neighbourhood_function(san.social, precision=6)
            frozen_totals = neighbourhood_function(frozen.social, precision=6)
            assert len(mutable_totals) == len(frozen_totals)
            for left, right in zip(mutable_totals, frozen_totals):
                assert math.isclose(left, right, rel_tol=1e-9)
            assert math.isclose(
                effective_diameter(san.social, precision=6),
                effective_diameter(frozen.social, precision=6),
                rel_tol=1e-9,
            )

    @pytest.mark.parametrize("factory", EDGE_CASES)
    def test_edge_cases(self, factory):
        san = factory()
        frozen = san.freeze()
        mutable_totals = neighbourhood_function(san.social, precision=5)
        frozen_totals = neighbourhood_function(frozen.social, precision=5)
        assert len(mutable_totals) == len(frozen_totals)
        for left, right in zip(mutable_totals, frozen_totals):
            assert math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-12)

    def test_self_loop_free_invariant(self):
        """A reciprocal pair reaches each other; a self-loop adds nothing."""
        san = san_from_edge_lists([(1, 2), (2, 1), (3, 3)])
        for graph in (san.social, san.freeze().social):
            totals = neighbourhood_function(graph, precision=6)
            # 3 self-pairs at d=0; {1,2} reach each other at d=1; 3 only itself.
            assert totals[-1] > totals[0]


class TestRandomWalkKernels:
    def test_walks_are_valid_paths(self):
        san = random_san(12)
        frozen = san.freeze()
        starts = list(range(20))
        walks = random_walks(frozen.social, starts, 8, rng=5)
        assert [walk[0] for walk in walks] == starts
        for walk in walks:
            assert len(walk) <= 9
            for previous, current in zip(walk, walk[1:]):
                assert current in frozen.social.neighbors(previous)

    def test_degree_cap_respected(self):
        san = random_san(13, num_social=30, num_edges=500)
        frozen = san.freeze()
        from repro.algorithms.random_walk import capped_undirected_csr

        indptr, indices = capped_undirected_csr(frozen.social, degree_cap=3, rng=1)
        import numpy as np

        assert int(np.diff(indptr).max()) <= 3
        # Capped rows stay sorted and remain a subset of the original row.
        for i in range(len(indptr) - 1):
            row = indices[indptr[i] : indptr[i + 1]]
            assert list(row) == sorted(row)
            assert set(row.tolist()) <= set(frozen.social.undirected_row(i).tolist())

    def test_dead_end_stops_walk(self):
        san = SAN()
        san.add_social_edge(1, 2)  # undirected projection: 1 - 2
        san.add_social_node(3)     # isolated
        frozen = san.freeze()
        walks = random_walks(frozen.social, [3, 1], 5, rng=2)
        assert walks[0] == [3]
        assert len(walks[1]) == 6  # bounces between 1 and 2

    @pytest.mark.parametrize("factory", EDGE_CASES)
    def test_edge_cases(self, factory):
        san = factory()
        frozen = san.freeze()
        starts = list(san.social_nodes())
        walks = random_walks(frozen.social, starts, 4, rng=3)
        assert len(walks) == len(starts)
        for start, walk in zip(starts, walks):
            assert walk[0] == start


class TestSamplingKernels:
    def test_sampled_edges_are_real_edges(self):
        san = random_san(14)
        frozen = san.freeze()
        sampled = sample_social_edges(frozen, 40, rng=4)
        assert len(sampled) == 40
        assert len(set(sampled)) == 40  # without replacement
        for source, target in sampled:
            assert san.has_social_edge(source, target)

    def test_oversampling_returns_every_edge(self):
        san = single_node_san()
        assert sample_social_edges(san.freeze(), 5, rng=1) == []
        pair = san_from_edge_lists([(1, 2)])
        assert sample_social_edges(pair.freeze(), 5, rng=1) == [(1, 2)]


class TestLinkPredictionKernels:
    def test_batch_matches_single_pair(self, scipy_mode):
        for seed in (15, 16):
            san = random_san(seed)
            frozen = san.freeze()
            rng = random.Random(2)
            nodes = list(san.social_nodes())
            pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(120)]
            frozen_features = pair_features_batch(frozen, pairs)
            for (source, target), frozen_row in zip(pairs, frozen_features):
                mutable_row = pair_features(san, source, target)
                assert set(mutable_row) == set(frozen_row)
                for key in mutable_row:
                    assert math.isclose(
                        mutable_row[key], frozen_row[key], rel_tol=1e-9, abs_tol=1e-12
                    )
            assert common_neighbor_counts(frozen, pairs) == (
                common_neighbor_counts(san, pairs)
            )
            for left, right in zip(
                adamic_adar_scores(frozen, pairs), adamic_adar_scores(san, pairs)
            ):
                assert math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-12)

    def test_rank_candidate_pairs_parity(self, scipy_mode):
        san = random_san(17, num_social=40, num_edges=150)
        frozen = san.freeze()
        mutable_top = rank_candidate_pairs(san, top_k=10_000)
        frozen_top = rank_candidate_pairs(frozen, top_k=10_000)
        assert [(s, t, float(score)) for s, t, score in mutable_top] == [
            (s, t, float(score)) for s, t, score in frozen_top
        ]
        mutable_aa = dict_of(rank_candidate_pairs(san, top_k=10_000, metric="adamic_adar"))
        frozen_aa = dict_of(rank_candidate_pairs(frozen, top_k=10_000, metric="adamic_adar"))
        assert mutable_aa.keys() == frozen_aa.keys()
        for key, value in mutable_aa.items():
            assert math.isclose(value, frozen_aa[key], rel_tol=1e-9)

    def test_rank_candidate_pairs_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            rank_candidate_pairs(random_san(1), metric="jaccard")

    @pytest.mark.parametrize("factory", EDGE_CASES)
    def test_edge_cases(self, factory, scipy_mode):
        san = factory()
        frozen = san.freeze()
        assert pair_features_batch(frozen, []) == []
        assert common_neighbor_counts(frozen, []) == []
        assert adamic_adar_scores(frozen, []) == []
        assert rank_candidate_pairs(frozen, top_k=10) == (
            rank_candidate_pairs(san, top_k=10)
        )


def dict_of(ranked):
    return {(source, target): score for source, target, score in ranked}


class TestApplicationKernels:
    def test_sybil_structural_parity(self):
        san = random_san(18)
        frozen = san.freeze()
        results = sybil_identities_vs_compromised(frozen, [0, 5, 25], rng=3)
        assert [r.num_compromised for r in results] == [0, 5, 25]
        assert results[0].num_attack_edges == 0
        assert results[2].num_attack_edges >= results[1].num_attack_edges >= 0
        for result in results:
            assert result.num_sybil_identities == result.num_attack_edges * 10.0

    def test_sybil_full_compromise_has_no_attack_edges(self):
        san = random_san(19, num_social=12, num_edges=40)
        frozen = san.freeze()
        results = sybil_identities_vs_compromised(frozen, [12], rng=1)
        assert results[0].num_attack_edges == 0

    def test_anonymity_probability_bounds(self):
        san = random_san(20)
        frozen = san.freeze()
        none_compromised = end_to_end_attack_probability(frozen, set(), rng=2)
        assert none_compromised == 0.0
        some = end_to_end_attack_probability(frozen, set(range(20)), rng=2)
        assert 0.0 <= some <= 1.0
        everyone = end_to_end_attack_probability(
            frozen, set(san.social_nodes()), rng=2
        )
        assert everyone == 0.0  # no honest initiator left

    @pytest.mark.parametrize("factory", EDGE_CASES)
    def test_edge_cases(self, factory):
        san = factory()
        frozen = san.freeze()
        results = sybil_identities_vs_compromised(frozen, [0, 3], rng=1)
        assert len(results) == 2
        assert end_to_end_attack_probability(frozen, set(), rng=1) >= 0.0
