"""Prediction demo: attributes improve reciprocity and link prediction.

Run with::

    python examples/link_prediction_demo.py

Section 4.2 of the paper argues that reciprocity predictors should use node
attributes: one-directional links between attribute-sharing users are about
twice as likely to become mutual.  This demo trains two simple logistic
predictors — structure-only features vs structure+attribute features — on a
simulated crawl and compares their AUC on reciprocity prediction and link
prediction.
"""

from __future__ import annotations

from repro.applications import (
    build_link_prediction_dataset,
    build_reciprocity_dataset,
    compare_predictors,
)
from repro.crawler import crawl_evolution
from repro.experiments import format_table
from repro.metrics import fine_grained_reciprocity
from repro.metrics.evolution import PhaseBoundaries
from repro.metrics.influence import reciprocity_boost_from_attributes
from repro.synthetic import GooglePlusConfig, build_workload


def main() -> None:
    config = GooglePlusConfig(total_users=1200, num_days=80, phases=PhaseBoundaries(18, 60))
    workload = build_workload(config, rng=3, snapshot_count=8)
    series = crawl_evolution(workload.evolution, workload.snapshot_days)
    earlier, later = series.halfway(), series.last()
    print(f"Training snapshot: {earlier!r}")
    print(f"Label snapshot:    {later!r}")
    print()

    fine = fine_grained_reciprocity(earlier, later)
    boost = reciprocity_boost_from_attributes(fine)
    print("Observed reciprocation rates (one-way links at the halfway snapshot):")
    for bucket, label in ((0, "no shared attribute"), (1, "1 shared attribute"), (2, ">=2 shared attributes")):
        rate = fine.average_rate_for_attribute_bucket(bucket)
        print(f"  {label:24s}: {'n/a' if rate is None else f'{rate:.3f}'}")
    print(f"  boost from sharing        : {boost:.2f}x" if boost else "  boost: n/a")
    print()

    rows = []
    for task, builder in (
        ("reciprocity prediction", build_reciprocity_dataset),
        ("link prediction", build_link_prediction_dataset),
    ):
        dataset = builder(earlier, later, max_pairs=1500, rng=17)
        aucs = compare_predictors(dataset, rng=18)
        rows.append(
            {
                "task": task,
                "examples": len(dataset.labels),
                "positives": sum(dataset.labels),
                "auc_structure_only": aucs["structure_only"],
                "auc_with_attributes": aucs["structure_plus_attributes"],
            }
        )
    print(format_table(rows, title="Predictor comparison (structure vs structure+attributes)"))


if __name__ == "__main__":
    main()
