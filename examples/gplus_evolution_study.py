"""Evolution study: reproduce the Section 3 / Section 4 measurements end to end.

Run with::

    python examples/gplus_evolution_study.py

Simulates a Google+-like network over its three launch phases, crawls daily
snapshots, and prints the evolution of the paper's headline metrics
(reciprocity, densities, diameters, clustering, assortativity) plus the
attribute-influence analyses of Section 4.2.
"""

from __future__ import annotations

from repro.crawler import crawl_evolution
from repro.experiments import (
    figure4_evolution,
    figure8_attribute_structure,
    figure13_influence,
    figure14_degree_by_attribute_value,
    format_series,
    format_table,
    series_trend,
)
from repro.metrics import PhaseBoundaries, growth_series
from repro.synthetic import GooglePlusConfig, build_workload


def main() -> None:
    config = GooglePlusConfig(
        total_users=1200,
        num_days=98,
        phases=PhaseBoundaries(phase_one_end=20, phase_two_end=75),
    )
    workload = build_workload(config, rng=7, snapshot_count=10)
    series = crawl_evolution(workload.evolution, workload.snapshot_days)
    snapshots = list(series)

    print("=" * 70)
    print("Growth (Figures 2-3)")
    print("=" * 70)
    growth = growth_series(snapshots)
    for key, points in growth.items():
        print(format_series(points, x_label="day", y_label=key, title=key))
        print(f"  trend: {series_trend(points)}\n")

    print("=" * 70)
    print("Social structure evolution (Figure 4)")
    print("=" * 70)
    evolution_metrics = figure4_evolution(snapshots, clustering_samples=2500, rng=1)
    for key, points in evolution_metrics.items():
        print(format_series(points, x_label="day", y_label=key, title=key))
        print()

    print("=" * 70)
    print("Attribute structure evolution (Figure 8)")
    print("=" * 70)
    attribute_metrics = figure8_attribute_structure(snapshots, clustering_samples=2500, rng=2)
    for key, points in attribute_metrics.items():
        print(format_series(points, x_label="day", y_label=key, title=key))
        print()

    print("=" * 70)
    print("Influence of attributes on the social structure (Figures 13-14)")
    print("=" * 70)
    influence = figure13_influence(series.halfway(), series.last())
    print("Reciprocation rate by number of shared attributes:")
    for bucket, rate in influence["reciprocity_by_bucket"].items():
        label = {0: "0 shared", 1: "1 shared", 2: ">=2 shared"}[bucket]
        print(f"  {label}: {rate if rate is None else round(rate, 3)}")
    print(f"  boost from sharing attributes: {influence['attribute_boost']:.2f}x")
    print()
    print("Average attribute clustering coefficient per type (Figure 13b):")
    for attr_type, value in sorted(influence["clustering_by_type"].items()):
        print(f"  {attr_type:10s} {value:.4f}")
    print()
    degree_tables = figure14_degree_by_attribute_value(series.last())
    for attr_type, rows in degree_tables.items():
        print(format_table(rows, title=f"Out-degree by top {attr_type} values (Figure 14)"))
        print()


if __name__ == "__main__":
    main()
