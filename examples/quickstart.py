"""Quickstart: build a SAN, measure it, and fit degree distributions.

Run with::

    python examples/quickstart.py

The script builds a small Social-Attribute Network by hand, prints the
headline metrics the paper studies (reciprocity, density, clustering,
diameter, assortativity), then simulates a small Google+-like evolution,
crawls it, and reports which distribution family best fits its degrees.
"""

from __future__ import annotations

from repro.crawler import crawl_evolution
from repro.fitting import best_fit_name, fit_lognormal
from repro.graph import SAN
from repro.metrics import (
    format_report,
    san_metric_report,
    social_out_degrees,
)
from repro.synthetic import GooglePlusConfig, build_workload
from repro.metrics.evolution import PhaseBoundaries


def hand_built_san() -> SAN:
    """The running example of the paper's Figure 1, built edge by edge."""
    san = SAN()
    # Directed social links ("in your circles").
    for source, target in [(1, 2), (2, 1), (2, 3), (3, 2), (1, 3), (4, 2), (5, 6), (6, 5)]:
        san.add_social_edge(source, target)
    # Undirected attribute links from user profiles.
    san.add_attribute_edge(1, "employer:Google", attr_type="employer", value="Google")
    san.add_attribute_edge(2, "employer:Google", attr_type="employer", value="Google")
    san.add_attribute_edge(2, "school:UC Berkeley", attr_type="school", value="UC Berkeley")
    san.add_attribute_edge(4, "major:Computer Science", attr_type="major", value="Computer Science")
    san.add_attribute_edge(5, "major:Computer Science", attr_type="major", value="Computer Science")
    san.add_attribute_edge(6, "city:San Francisco", attr_type="city", value="San Francisco")
    return san


def main() -> None:
    print("=" * 70)
    print("1. A hand-built SAN (Figure 1 of the paper)")
    print("=" * 70)
    san = hand_built_san()
    print(format_report(san_metric_report(san, rng=1), title="Hand-built SAN metrics"))
    print()
    print("Common attributes of users 1 and 2:", sorted(san.common_attributes(1, 2)))
    print()

    print("=" * 70)
    print("2. A simulated Google+-like evolution, crawled daily")
    print("=" * 70)
    config = GooglePlusConfig(
        total_users=800, num_days=60, phases=PhaseBoundaries(phase_one_end=15, phase_two_end=45)
    )
    workload = build_workload(config, rng=42, snapshot_count=8)
    series = crawl_evolution(workload.evolution, workload.snapshot_days)
    # Freeze the finished snapshot: same read API, but metrics now run on
    # CSR numpy arrays instead of per-node dict walks (see docs/architecture.md).
    final = series.last().freeze()
    print(format_report(san_metric_report(final, rng=2), title="Final crawled snapshot (frozen backend)"))
    print()

    degrees = [d for d in social_out_degrees(final) if d >= 1]
    fit = fit_lognormal(degrees)
    print(
        "Out-degree best-fit family:",
        best_fit_name(degrees),
        f"(lognormal mu={fit.distribution.mu:.2f}, sigma={fit.distribution.sigma:.2f})",
    )
    print("Crawl coverage per day:", {day: round(value, 3) for day, value in series.coverage.items()})


if __name__ == "__main__":
    main()
