"""Generative-model demo: fit the SAN model to a reference network and compare.

Run with::

    python examples/generative_model_demo.py

Simulates a reference Google+-like SAN, estimates the generative-model
parameters from it (inverting Theorems 1-2 and measuring the attribute
structure), generates synthetic SANs with our model and with the Zhel
baseline, and compares the three on the paper's evaluation metrics
(degree-distribution families, clustering, reciprocity).
"""

from __future__ import annotations

from repro.crawler import crawl_evolution
from repro.experiments import figure16_model_degree_distributions, format_table
from repro.metrics import (
    attribute_density,
    exact_attribute_clustering_coefficient,
    global_reciprocity,
    social_density,
)
from repro.models import (
    ZhelModelParameters,
    estimate_parameters,
    generate_san,
    generate_zhel_san,
    predicted_attribute_social_degree_exponent,
    predicted_outdegree_lognormal,
    san_generate,
)
from repro.synthetic import GooglePlusConfig, build_workload
from repro.metrics.evolution import PhaseBoundaries


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build the reference network (stand-in for the Google+ crawl).
    # ------------------------------------------------------------------
    config = GooglePlusConfig(
        total_users=1000, num_days=70, phases=PhaseBoundaries(15, 55)
    )
    workload = build_workload(config, rng=11, snapshot_count=6)
    reference = crawl_evolution(workload.evolution, workload.snapshot_days).last()
    print(f"Reference SAN: {reference!r}")

    # ------------------------------------------------------------------
    # 2. Estimate model parameters from the reference (guided initialisation).
    # ------------------------------------------------------------------
    estimation = estimate_parameters(reference, mean_sleep=2.0, beta=200.0)
    params = estimation.parameters
    print("\nEstimated parameters:")
    print(f"  lifetime mu/sigma       : {params.lifetime.mu:.2f} / {params.lifetime.sigma:.2f}")
    print(f"  mean sleep              : {params.lifetime.mean_sleep:.2f}")
    print(f"  attribute mu/sigma      : {params.attribute_mu:.2f} / {params.attribute_sigma:.2f}")
    print(f"  new-attribute prob p    : {params.new_attribute_probability:.3f}")
    print(f"  reciprocation prob      : {params.reciprocation_probability:.3f}")
    prediction = predicted_outdegree_lognormal(params)
    print(f"  Theorem 1 predicts out-degree lognormal(mu={prediction.mu:.2f}, sigma={prediction.sigma:.2f})")
    print(
        "  Theorem 2 predicts attribute social-degree exponent "
        f"{predicted_attribute_social_degree_exponent(params):.2f}"
    )

    # ------------------------------------------------------------------
    # 3. Generate synthetic SANs: our model and the Zhel baseline.
    # ------------------------------------------------------------------
    model_run = generate_san(params, rng=23, record_history=False)
    # The vectorized engine runs the same process on array state (>= 5x at
    # benchmark scale) and materializes snapshots as frozen CSR views from
    # delta watermarks instead of per-snapshot copies.
    fast_run = san_generate(
        params, rng=23, snapshot_every=max(params.steps // 4, 1), engine="vectorized"
    )
    growth = " -> ".join(
        f"{step}:{view.number_of_social_edges()}e" for step, view in fast_run.snapshots
    )
    print(f"\nVectorized engine: {fast_run.san!r}")
    print(f"  delta-snapshot growth: {growth}")
    zhel_run = generate_zhel_san(
        ZhelModelParameters(steps=params.steps, reciprocation_probability=params.reciprocation_probability),
        rng=23,
        record_history=False,
    )
    print(f"\nOur model   : {model_run.san!r}")
    print(f"Zhel baseline: {zhel_run.san!r}")

    # ------------------------------------------------------------------
    # 4. Compare on network metrics (the Figure 16 analysis).
    # ------------------------------------------------------------------
    fits = figure16_model_degree_distributions(reference, model_run.san, zhel_run.san)
    rows = []
    for network, per_quantity in fits.items():
        for quantity, entry in per_quantity.items():
            rows.append(
                {
                    "network": network,
                    "quantity": quantity,
                    "best_fit": entry.get("best_fit"),
                    "lognormal_advantage": entry.get("lognormal_minus_power_ll"),
                }
            )
    print()
    print(format_table(rows, title="Degree-distribution families (Figure 16)"))

    summary_rows = []
    for name, san in (("reference", reference), ("san_model", model_run.san), ("zhel", zhel_run.san)):
        summary_rows.append(
            {
                "network": name,
                "reciprocity": global_reciprocity(san),
                "social_density": social_density(san),
                "attribute_density": attribute_density(san),
                "attribute_clustering": exact_attribute_clustering_coefficient(san),
            }
        )
    print()
    print(format_table(summary_rows, title="Headline metrics"))


if __name__ == "__main__":
    main()
